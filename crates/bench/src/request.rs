//! Typed sweep-request configuration — the `BENCH_*` consolidation layer.
//!
//! Seven PRs grew the harness fourteen-plus ad-hoc `BENCH_*` environment
//! variables (`BENCH_JOBS`, `BENCH_RETRY_*`, `BENCH_SWEEP_*`,
//! `BENCH_RESULT_STORE`, …), each parsed at its point of use. This module
//! replaces that sprawl with one validated, schema-versioned
//! [`SweepRequest`] struct that the `run_all` CLI, the `sweepd` service
//! and the library share: the server's POST body and the CLI's
//! `--config` file are **the same document**.
//!
//! Serialization uses the in-tree [`Json`] layer (the workspace takes no
//! external dependencies, so there is no serde crate to derive from) with
//! an explicit `schema_version` field, exactly like the run manifest.
//!
//! # Layering
//!
//! A [`RequestOverlay`] is a *partial* request: every field optional.
//! Overlays come from three sources and merge in strict precedence
//! order — **flags over file over environment** — via
//! [`SweepRequest::resolve`]:
//!
//! 1. command-line flags (`--jobs`, `--store`),
//! 2. a `--config file.json` document / a POSTed request body,
//! 3. the legacy `BENCH_*` environment.
//!
//! A field set by *both* the config file and the environment to
//! **different** values is a hard error naming both sources (the
//! usage-error convention: `run_all` exits 2); flags override either
//! silently, and the environment overrides nothing.
//!
//! # The compat gate
//!
//! Every legacy `BENCH_*` read in this crate goes through
//! [`compat::setting`]: a process-wide gate that (a) lets a resolved
//! request install itself as the authoritative source for deep readers
//! ([`compat::install_overrides`]) and (b) emits a one-line deprecation
//! note the first time an environment variable — rather than a typed
//! request — is the source of a setting. No production code reads
//! `std::env::var("BENCH_…")` directly anymore.

use std::path::PathBuf;

use ecdp::system::SystemKind;
use sim_core::Json;
use workloads::{registry, InputSet};

use crate::lab::CheckpointConfig;
use crate::sweep::{RetryPolicy, SweepPlan};

/// Version of the request document format (`--config` files and POSTed
/// sweep requests). Bumped on incompatible field changes. Version 2
/// added `workload_files`; version-1 documents are still accepted (the
/// new field simply could not appear in them).
pub const REQUEST_SCHEMA_VERSION: u32 = 2;

/// Request document versions this build reads.
pub const ACCEPTED_SCHEMA_VERSIONS: [u32; 2] = [1, REQUEST_SCHEMA_VERSION];

/// The headline systems swept by default: the paper's seven
/// configurations of Figure 7.
pub const DEFAULT_SYSTEMS: [SystemKind; 7] = [
    SystemKind::NoPrefetch,
    SystemKind::StreamOnly,
    SystemKind::OracleLds,
    SystemKind::StreamCdp,
    SystemKind::StreamEcdp,
    SystemKind::StreamCdpThrottled,
    SystemKind::StreamEcdpThrottled,
];

/// Request field ↔ legacy environment variable mapping (also the table
/// documented in DESIGN.md). `compat::setting` uses it for the
/// deprecation notes; [`RequestOverlay::conflicts_with_env`] for the
/// conflict messages.
pub const LEGACY_ENV: &[(&str, &str)] = &[
    ("workloads", "BENCH_SWEEP_WORKLOADS"),
    ("workload_files", "BENCH_WORKLOAD_FILES"),
    ("input", "BENCH_SWEEP_INPUT"),
    ("systems", "BENCH_SWEEP_SYSTEMS"),
    ("jobs", "BENCH_JOBS"),
    ("retry.attempts", "BENCH_RETRY_ATTEMPTS"),
    ("retry.backoff_ms", "BENCH_RETRY_BACKOFF_MS"),
    ("retry.cell_deadline_ms", "BENCH_CELL_DEADLINE_MS"),
    ("checkpoint.dir", "BENCH_CHECKPOINT_DIR"),
    ("checkpoint.warm_cycles", "BENCH_WARM_CYCLES"),
    ("store.path", "BENCH_RESULT_STORE"),
    ("store.compact", "BENCH_STORE_COMPACT"),
    ("fault_plan", "BENCH_FAULT_PLAN"),
    ("trace_cache", "BENCH_TRACE_CACHE"),
    ("lab_dir", "BENCH_LAB_DIR"),
    ("verbose", "BENCH_VERBOSE"),
    ("validate_thresholds", "BENCH_VALIDATE_THRESHOLDS"),
    ("baseline", "BENCH_BASELINE"),
];

/// The process-wide legacy-environment gate. See the module docs.
pub mod compat {
    use std::collections::{HashMap, HashSet};
    use std::sync::{Mutex, OnceLock};

    static OVERRIDES: OnceLock<HashMap<String, String>> = OnceLock::new();
    static NOTED: OnceLock<Mutex<HashSet<String>>> = OnceLock::new();

    /// Installs a resolved request as the authoritative source for every
    /// later [`setting`] read in this process. Call once, before worker
    /// threads spawn (`run_all`/`sweepd` do this right after resolving
    /// their configuration). Keys are legacy variable names
    /// (`"BENCH_JOBS"`), values their string forms.
    ///
    /// # Errors
    ///
    /// Returns an error if overrides were already installed.
    pub fn install_overrides(
        settings: impl IntoIterator<Item = (String, String)>,
    ) -> Result<(), String> {
        OVERRIDES
            .set(settings.into_iter().collect())
            .map_err(|_| "sweep-request overrides already installed in this process".to_string())
    }

    /// The value of one legacy setting: an installed override if any,
    /// else the environment variable (emitting the one-time deprecation
    /// note), else `None`.
    pub fn setting(var: &str) -> Option<String> {
        if let Some(overrides) = OVERRIDES.get() {
            if let Some(v) = overrides.get(var) {
                return Some(v.clone());
            }
        }
        let v = std::env::var_os(var)?.to_str()?.to_string();
        note(var);
        Some(v)
    }

    /// True when [`setting`] would return a value (used for
    /// presence-style flags like `BENCH_VERBOSE`).
    pub fn setting_is_set(var: &str) -> bool {
        setting(var).is_some()
    }

    fn note(var: &str) {
        let noted = NOTED.get_or_init(|| Mutex::new(HashSet::new()));
        let mut set = noted
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if set.insert(var.to_string()) {
            let field = super::LEGACY_ENV
                .iter()
                .find(|(_, v)| *v == var)
                .map_or("(unmapped)", |(f, _)| *f);
            eprintln!(
                "[request] note: legacy {var} is the source of `{field}`; \
                 prefer a typed SweepRequest (--config / POST body, see DESIGN.md)"
            );
        }
    }
}

fn parse_input(s: &str) -> Result<InputSet, String> {
    match s {
        "test" => Ok(InputSet::Test),
        "train" => Ok(InputSet::Train),
        "ref" => Ok(InputSet::Ref),
        other => Err(format!("unknown input set {other:?} (want test/train/ref)")),
    }
}

fn parse_systems(labels: &[String]) -> Result<Vec<SystemKind>, String> {
    labels
        .iter()
        .map(|l| SystemKind::from_label(l).ok_or_else(|| format!("unknown system label {l:?}")))
        .collect()
}

/// Registers every listed workload file, returning the workload names
/// they define in file order. Idempotent for unchanged files (content
/// hashing in the registry), so re-resolving a request is safe.
fn register_workload_files(files: &[String]) -> Result<Vec<String>, String> {
    let mut loaded = Vec::new();
    for f in files {
        loaded.extend(registry::register_file(f).map_err(|e| format!("workload_files: {e}"))?);
    }
    Ok(loaded)
}

fn split_list(v: &str) -> Vec<String> {
    v.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(ToString::to_string)
        .collect()
}

/// A partially-specified sweep request: every field optional, so three
/// sources (flags, file, environment) can be merged with explicit
/// precedence. See the module docs for the layering rules.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RequestOverlay {
    /// Workload names (`BENCH_SWEEP_WORKLOADS`).
    pub workloads: Option<Vec<String>>,
    /// Workload files — `.wl` specs, `.trace` text traces or `.xtrc`
    /// binary traces — registered before the grid is built
    /// (`BENCH_WORKLOAD_FILES`).
    pub workload_files: Option<Vec<String>>,
    /// Input set (`BENCH_SWEEP_INPUT`).
    pub input: Option<InputSet>,
    /// System configurations (`BENCH_SWEEP_SYSTEMS`).
    pub systems: Option<Vec<SystemKind>>,
    /// Worker threads (`BENCH_JOBS`).
    pub jobs: Option<usize>,
    /// Supervisor attempt budget (`BENCH_RETRY_ATTEMPTS`).
    pub retry_attempts: Option<u32>,
    /// Supervisor backoff base (`BENCH_RETRY_BACKOFF_MS`).
    pub retry_backoff_ms: Option<u64>,
    /// Per-attempt wall-clock deadline; 0 disables
    /// (`BENCH_CELL_DEADLINE_MS`).
    pub cell_deadline_ms: Option<u64>,
    /// Warm-checkpoint directory (`BENCH_CHECKPOINT_DIR`).
    pub checkpoint_dir: Option<String>,
    /// Warm-checkpoint capture cycle (`BENCH_WARM_CYCLES`).
    pub warm_cycles: Option<u64>,
    /// Persistent result-store path (`BENCH_RESULT_STORE`).
    pub store_path: Option<String>,
    /// Compact the store after the sweep (`BENCH_STORE_COMPACT=1`).
    pub store_compact: Option<bool>,
    /// Fault-injection plan text (`BENCH_FAULT_PLAN`).
    pub fault_plan: Option<String>,
    /// On-disk trace cache directory (`BENCH_TRACE_CACHE`).
    pub trace_cache: Option<String>,
    /// Manifest output directory (`BENCH_LAB_DIR`).
    pub lab_dir: Option<String>,
    /// Per-simulation progress lines on stderr (`BENCH_VERBOSE`).
    pub verbose: Option<bool>,
    /// Table 3 re-derivation thresholds, `cov,alow,ahigh`
    /// (`BENCH_VALIDATE_THRESHOLDS`).
    pub validate_thresholds: Option<String>,
    /// Hot-path benchmark baseline report path (`BENCH_BASELINE`).
    pub baseline: Option<String>,
}

impl RequestOverlay {
    /// The overlay described by the legacy `BENCH_*` environment, read
    /// through the [`compat`] gate. Soft-invalid numeric values
    /// (`BENCH_JOBS=many`) are ignored with a warning, matching the
    /// historical per-site parsers; structurally invalid grid values
    /// (an unknown system label) are hard errors.
    ///
    /// # Errors
    ///
    /// Returns a one-line message for an unknown input set, system
    /// label, or a malformed fault plan.
    pub fn from_env() -> Result<Self, String> {
        fn lenient<T: std::str::FromStr>(var: &str) -> Option<T> {
            let raw = compat::setting(var)?;
            match raw.trim().parse() {
                Ok(v) => Some(v),
                Err(_) => {
                    eprintln!("[request] ignoring invalid {var}={raw:?}");
                    None
                }
            }
        }
        let systems = match compat::setting("BENCH_SWEEP_SYSTEMS") {
            Some(v) => Some(
                parse_systems(&split_list(&v))
                    .map_err(|e| format!("{e} in BENCH_SWEEP_SYSTEMS"))?,
            ),
            None => None,
        };
        let input = match compat::setting("BENCH_SWEEP_INPUT") {
            Some(v) => Some(parse_input(&v).map_err(|e| format!("BENCH_SWEEP_INPUT: {e}"))?),
            None => None,
        };
        let fault_plan = compat::setting("BENCH_FAULT_PLAN");
        if let Some(text) = &fault_plan {
            crate::fault::FaultPlan::parse(text).map_err(|e| format!("BENCH_FAULT_PLAN: {e}"))?;
        }
        Ok(RequestOverlay {
            workloads: compat::setting("BENCH_SWEEP_WORKLOADS").map(|v| split_list(&v)),
            workload_files: compat::setting("BENCH_WORKLOAD_FILES").map(|v| split_list(&v)),
            input,
            systems,
            jobs: lenient::<usize>("BENCH_JOBS").filter(|&n| n > 0),
            retry_attempts: lenient::<u32>("BENCH_RETRY_ATTEMPTS").filter(|&n| n >= 1),
            retry_backoff_ms: lenient("BENCH_RETRY_BACKOFF_MS"),
            cell_deadline_ms: lenient("BENCH_CELL_DEADLINE_MS"),
            checkpoint_dir: compat::setting("BENCH_CHECKPOINT_DIR"),
            warm_cycles: lenient("BENCH_WARM_CYCLES"),
            store_path: compat::setting("BENCH_RESULT_STORE").filter(|s| !s.is_empty()),
            store_compact: compat::setting("BENCH_STORE_COMPACT").map(|v| v == "1"),
            fault_plan,
            trace_cache: compat::setting("BENCH_TRACE_CACHE"),
            lab_dir: compat::setting("BENCH_LAB_DIR"),
            verbose: compat::setting("BENCH_VERBOSE").map(|_| true),
            validate_thresholds: compat::setting("BENCH_VALIDATE_THRESHOLDS"),
            baseline: compat::setting("BENCH_BASELINE"),
        })
    }

    /// Parses a request document (a `--config` file or a POSTed body).
    /// Unknown fields are hard errors — a misspelled knob silently
    /// configuring nothing is worse than failing fast.
    ///
    /// # Errors
    ///
    /// Returns a one-line message on an unsupported `schema_version`, an
    /// unknown field, or a mistyped value.
    pub fn from_json(j: &Json) -> Result<Self, String> {
        const KNOWN: &[&str] = &[
            "schema_version",
            "workloads",
            "workload_files",
            "input",
            "systems",
            "jobs",
            "retry",
            "checkpoint",
            "store",
            "fault_plan",
            "trace_cache",
            "lab_dir",
            "verbose",
            "validate_thresholds",
            "baseline",
        ];
        let Json::Obj(pairs) = j else {
            return Err("request document must be a JSON object".to_string());
        };
        for (k, _) in pairs {
            if !KNOWN.contains(&k.as_str()) {
                return Err(format!("unknown request field {k:?}"));
            }
        }
        if let Some(v) = j.get("schema_version") {
            let version = v.as_u64().ok_or("schema_version must be an integer")?;
            if !ACCEPTED_SCHEMA_VERSIONS
                .iter()
                .any(|&a| u64::from(a) == version)
            {
                return Err(format!(
                    "unsupported request schema_version {version} (this build reads {ACCEPTED_SCHEMA_VERSIONS:?})"
                ));
            }
        }
        fn str_list(j: &Json, key: &str) -> Result<Option<Vec<String>>, String> {
            match j.get(key) {
                None => Ok(None),
                Some(v) => v
                    .as_arr()
                    .ok_or(format!("{key} must be an array of strings"))?
                    .iter()
                    .map(|e| {
                        e.as_str()
                            .map(ToString::to_string)
                            .ok_or(format!("{key} must be an array of strings"))
                    })
                    .collect::<Result<Vec<_>, _>>()
                    .map(Some),
            }
        }
        fn str_field(j: &Json, key: &str) -> Result<Option<String>, String> {
            match j.get(key) {
                None => Ok(None),
                Some(v) => v
                    .as_str()
                    .map(|s| Some(s.to_string()))
                    .ok_or(format!("{key} must be a string")),
            }
        }
        fn u64_field(j: &Json, key: &str) -> Result<Option<u64>, String> {
            match j.get(key) {
                None => Ok(None),
                Some(v) => v
                    .as_u64()
                    .map(Some)
                    .ok_or(format!("{key} must be a non-negative integer")),
            }
        }
        fn bool_field(j: &Json, key: &str) -> Result<Option<bool>, String> {
            match j.get(key) {
                None => Ok(None),
                Some(Json::Bool(b)) => Ok(Some(*b)),
                Some(_) => Err(format!("{key} must be a boolean")),
            }
        }

        let mut o = RequestOverlay {
            workloads: str_list(j, "workloads")?,
            workload_files: str_list(j, "workload_files")?,
            input: match str_field(j, "input")? {
                Some(s) => Some(parse_input(&s)?),
                None => None,
            },
            systems: match str_list(j, "systems")? {
                Some(labels) => Some(parse_systems(&labels)?),
                None => None,
            },
            jobs: u64_field(j, "jobs")?
                .map(|n| {
                    if n == 0 {
                        Err("jobs must be at least 1".to_string())
                    } else {
                        Ok(n as usize)
                    }
                })
                .transpose()?,
            fault_plan: str_field(j, "fault_plan")?,
            trace_cache: str_field(j, "trace_cache")?,
            lab_dir: str_field(j, "lab_dir")?,
            verbose: bool_field(j, "verbose")?,
            validate_thresholds: str_field(j, "validate_thresholds")?,
            baseline: str_field(j, "baseline")?,
            ..RequestOverlay::default()
        };
        if let Some(r) = j.get("retry") {
            o.retry_attempts = u64_field(r, "attempts")?
                .map(|n| {
                    if n == 0 {
                        Err("retry.attempts must be at least 1".to_string())
                    } else {
                        Ok(n as u32)
                    }
                })
                .transpose()?;
            o.retry_backoff_ms = u64_field(r, "backoff_ms")?;
            o.cell_deadline_ms = u64_field(r, "cell_deadline_ms")?;
        }
        if let Some(c) = j.get("checkpoint") {
            o.checkpoint_dir = str_field(c, "dir")?;
            o.warm_cycles = u64_field(c, "warm_cycles")?;
        }
        if let Some(s) = j.get("store") {
            o.store_path = str_field(s, "path")?;
            o.store_compact = bool_field(s, "compact")?;
        }
        if let Some(text) = &o.fault_plan {
            crate::fault::FaultPlan::parse(text).map_err(|e| format!("fault_plan: {e}"))?;
        }
        Ok(o)
    }

    /// Sparse JSON form: only set fields are emitted, so an overlay
    /// round-trips exactly and a POST body stays minimal.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![(
            "schema_version",
            Json::Num(f64::from(REQUEST_SCHEMA_VERSION)),
        )];
        if let Some(w) = &self.workloads {
            pairs.push((
                "workloads",
                Json::Arr(w.iter().map(|s| Json::Str(s.clone())).collect()),
            ));
        }
        if let Some(f) = &self.workload_files {
            pairs.push((
                "workload_files",
                Json::Arr(f.iter().map(|s| Json::Str(s.clone())).collect()),
            ));
        }
        if let Some(i) = self.input {
            pairs.push(("input", Json::Str(format!("{i:?}").to_lowercase())));
        }
        if let Some(s) = &self.systems {
            pairs.push((
                "systems",
                Json::Arr(s.iter().map(|k| Json::Str(k.label().to_string())).collect()),
            ));
        }
        if let Some(n) = self.jobs {
            pairs.push(("jobs", Json::Num(n as f64)));
        }
        let mut retry = Vec::new();
        if let Some(n) = self.retry_attempts {
            retry.push(("attempts", Json::Num(f64::from(n))));
        }
        if let Some(ms) = self.retry_backoff_ms {
            retry.push(("backoff_ms", Json::Num(ms as f64)));
        }
        if let Some(ms) = self.cell_deadline_ms {
            retry.push(("cell_deadline_ms", Json::Num(ms as f64)));
        }
        if !retry.is_empty() {
            pairs.push(("retry", Json::obj(retry)));
        }
        let mut checkpoint = Vec::new();
        if let Some(d) = &self.checkpoint_dir {
            checkpoint.push(("dir", Json::Str(d.clone())));
        }
        if let Some(c) = self.warm_cycles {
            checkpoint.push(("warm_cycles", Json::Num(c as f64)));
        }
        if !checkpoint.is_empty() {
            pairs.push(("checkpoint", Json::obj(checkpoint)));
        }
        let mut store = Vec::new();
        if let Some(p) = &self.store_path {
            store.push(("path", Json::Str(p.clone())));
        }
        if let Some(c) = self.store_compact {
            store.push(("compact", Json::Bool(c)));
        }
        if !store.is_empty() {
            pairs.push(("store", Json::obj(store)));
        }
        if let Some(f) = &self.fault_plan {
            pairs.push(("fault_plan", Json::Str(f.clone())));
        }
        if let Some(t) = &self.trace_cache {
            pairs.push(("trace_cache", Json::Str(t.clone())));
        }
        if let Some(l) = &self.lab_dir {
            pairs.push(("lab_dir", Json::Str(l.clone())));
        }
        if let Some(v) = self.verbose {
            pairs.push(("verbose", Json::Bool(v)));
        }
        if let Some(t) = &self.validate_thresholds {
            pairs.push(("validate_thresholds", Json::Str(t.clone())));
        }
        if let Some(b) = &self.baseline {
            pairs.push(("baseline", Json::Str(b.clone())));
        }
        Json::obj(pairs)
    }

    /// A copy with every field cleared that `mask` sets — used to mute
    /// file/environment conflicts on fields the flags decide anyway.
    #[must_use]
    pub fn without_fields_set_in(mut self, mask: &Self) -> Self {
        macro_rules! clear {
            ($($field:ident),* $(,)?) => {
                $(if mask.$field.is_some() { self.$field = None; })*
            };
        }
        clear!(
            workloads,
            workload_files,
            input,
            systems,
            jobs,
            retry_attempts,
            retry_backoff_ms,
            cell_deadline_ms,
            checkpoint_dir,
            warm_cycles,
            store_path,
            store_compact,
            fault_plan,
            trace_cache,
            lab_dir,
            verbose,
            validate_thresholds,
            baseline,
        );
        self
    }

    /// Merges `self` over `base`: set fields of `self` win.
    #[must_use]
    pub fn merged_over(self, base: Self) -> Self {
        RequestOverlay {
            workloads: self.workloads.or(base.workloads),
            workload_files: self.workload_files.or(base.workload_files),
            input: self.input.or(base.input),
            systems: self.systems.or(base.systems),
            jobs: self.jobs.or(base.jobs),
            retry_attempts: self.retry_attempts.or(base.retry_attempts),
            retry_backoff_ms: self.retry_backoff_ms.or(base.retry_backoff_ms),
            cell_deadline_ms: self.cell_deadline_ms.or(base.cell_deadline_ms),
            checkpoint_dir: self.checkpoint_dir.or(base.checkpoint_dir),
            warm_cycles: self.warm_cycles.or(base.warm_cycles),
            store_path: self.store_path.or(base.store_path),
            store_compact: self.store_compact.or(base.store_compact),
            fault_plan: self.fault_plan.or(base.fault_plan),
            trace_cache: self.trace_cache.or(base.trace_cache),
            lab_dir: self.lab_dir.or(base.lab_dir),
            verbose: self.verbose.or(base.verbose),
            validate_thresholds: self.validate_thresholds.or(base.validate_thresholds),
            baseline: self.baseline.or(base.baseline),
        }
    }

    /// Conflict check between a config file and the environment: one
    /// message per field both sources set to *different* values, naming
    /// both (the `run_all` usage-error text). Equal values agree and
    /// are not conflicts.
    pub fn conflicts_with_env(&self, env: &RequestOverlay) -> Vec<String> {
        fn show<T: std::fmt::Debug>(v: &T) -> String {
            format!("{v:?}")
        }
        let mut conflicts = Vec::new();
        macro_rules! check {
            ($field:ident, $name:expr, $var:expr) => {
                if let (Some(a), Some(b)) = (&self.$field, &env.$field) {
                    if a != b {
                        conflicts.push(format!(
                            "conflicting `{}`: --config sets {} but {}={}",
                            $name,
                            show(a),
                            $var,
                            show(b)
                        ));
                    }
                }
            };
        }
        check!(workloads, "workloads", "BENCH_SWEEP_WORKLOADS");
        check!(workload_files, "workload_files", "BENCH_WORKLOAD_FILES");
        check!(input, "input", "BENCH_SWEEP_INPUT");
        check!(systems, "systems", "BENCH_SWEEP_SYSTEMS");
        check!(jobs, "jobs", "BENCH_JOBS");
        check!(retry_attempts, "retry.attempts", "BENCH_RETRY_ATTEMPTS");
        check!(
            retry_backoff_ms,
            "retry.backoff_ms",
            "BENCH_RETRY_BACKOFF_MS"
        );
        check!(
            cell_deadline_ms,
            "retry.cell_deadline_ms",
            "BENCH_CELL_DEADLINE_MS"
        );
        check!(checkpoint_dir, "checkpoint.dir", "BENCH_CHECKPOINT_DIR");
        check!(warm_cycles, "checkpoint.warm_cycles", "BENCH_WARM_CYCLES");
        check!(store_path, "store.path", "BENCH_RESULT_STORE");
        check!(store_compact, "store.compact", "BENCH_STORE_COMPACT");
        check!(fault_plan, "fault_plan", "BENCH_FAULT_PLAN");
        check!(trace_cache, "trace_cache", "BENCH_TRACE_CACHE");
        check!(lab_dir, "lab_dir", "BENCH_LAB_DIR");
        check!(verbose, "verbose", "BENCH_VERBOSE");
        check!(
            validate_thresholds,
            "validate_thresholds",
            "BENCH_VALIDATE_THRESHOLDS"
        );
        check!(baseline, "baseline", "BENCH_BASELINE");
        conflicts
    }
}

/// A fully-resolved, validated sweep request: the one configuration
/// type `run_all`, `sweepd` and the library share.
///
/// Build one with the builder-style `with_*` methods, from the legacy
/// environment ([`SweepRequest::from_env`]), or by layering sources
/// ([`SweepRequest::resolve`]).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRequest {
    /// Workload names (validated against the workload registry).
    pub workloads: Vec<String>,
    /// Workload files registered before the grid is built. When the
    /// request names no explicit `workloads`, the grid is exactly the
    /// workloads these files define.
    pub workload_files: Vec<String>,
    /// Input set the measured traces come from.
    pub input: InputSet,
    /// System configurations to sweep.
    pub systems: Vec<SystemKind>,
    /// Worker threads; `None` means [`crate::default_jobs`].
    pub jobs: Option<usize>,
    /// Cell supervisor retry/deadline policy.
    pub retry: RetryPolicy,
    /// Warm-checkpoint store, when configured.
    pub checkpoint: Option<CheckpointConfig>,
    /// Persistent result-store path, when configured.
    pub store_path: Option<String>,
    /// Compact the result store after the sweep.
    pub store_compact: bool,
    /// Fault-injection plan text (empty = no injected faults).
    pub fault_plan: String,
    /// On-disk trace cache directory, when configured.
    pub trace_cache: Option<String>,
    /// Manifest output directory override, when configured.
    pub lab_dir: Option<String>,
    /// Per-simulation progress lines on stderr.
    pub verbose: bool,
    /// Table 3 re-derivation threshold override (`cov,alow,ahigh`).
    pub validate_thresholds: Option<String>,
    /// Hot-path benchmark baseline report path.
    pub baseline: Option<String>,
}

impl Default for SweepRequest {
    fn default() -> Self {
        SweepRequest {
            workloads: crate::experiments::POINTER_BENCHES
                .iter()
                .map(ToString::to_string)
                .collect(),
            workload_files: Vec::new(),
            input: InputSet::Ref,
            systems: DEFAULT_SYSTEMS.to_vec(),
            jobs: None,
            retry: RetryPolicy::default(),
            checkpoint: None,
            store_path: None,
            store_compact: false,
            fault_plan: String::new(),
            trace_cache: None,
            lab_dir: None,
            verbose: false,
            validate_thresholds: None,
            baseline: None,
        }
    }
}

impl SweepRequest {
    /// The request described entirely by the legacy environment —
    /// defaults plus the `BENCH_*` overlay.
    ///
    /// # Errors
    ///
    /// Returns a one-line message on a structurally invalid variable
    /// (unknown system label or input set, malformed fault plan, or an
    /// unknown workload name).
    pub fn from_env() -> Result<Self, String> {
        Self::resolve(RequestOverlay::default(), None, RequestOverlay::from_env()?)
    }

    /// Layers the three sources (see the module docs): flags over file
    /// over environment, with file↔environment disagreements rejected.
    /// A field the flags set silences any file/environment conflict on
    /// it — the flag decides, so the disagreement is moot.
    ///
    /// # Errors
    ///
    /// Returns a one-line message on a file/environment conflict or a
    /// request that fails [`SweepRequest::validated`].
    pub fn resolve(
        flags: RequestOverlay,
        file: Option<RequestOverlay>,
        env: RequestOverlay,
    ) -> Result<Self, String> {
        let mut merged = env;
        if let Some(file) = file {
            let conflicts = file
                .clone()
                .without_fields_set_in(&flags)
                .conflicts_with_env(&merged.clone().without_fields_set_in(&flags));
            if let Some(first) = conflicts.first() {
                return Err(format!(
                    "{first} (unset one of the two sources, or decide the field with a flag)"
                ));
            }
            merged = file.merged_over(merged);
        }
        merged = flags.merged_over(merged);
        Self::from_overlay(merged)?.validated()
    }

    fn from_overlay(o: RequestOverlay) -> Result<Self, String> {
        let d = SweepRequest::default();
        let rd = RetryPolicy::default();
        let checkpoint = o.checkpoint_dir.map(|dir| {
            CheckpointConfig::new(
                PathBuf::from(dir),
                o.warm_cycles
                    .unwrap_or(CheckpointConfig::DEFAULT_WARM_CYCLES),
            )
        });
        let workload_files = o.workload_files.unwrap_or_default();
        // Register files before the grid forms so their names resolve.
        // With no explicit workload list, files *are* the grid: loading
        // a spec and then sweeping something else would be surprising.
        let loaded = register_workload_files(&workload_files)?;
        let workloads = match o.workloads {
            Some(w) => w,
            None if !loaded.is_empty() => loaded,
            None => d.workloads,
        };
        Ok(SweepRequest {
            workloads,
            workload_files,
            input: o.input.unwrap_or(d.input),
            systems: o.systems.unwrap_or(d.systems),
            jobs: o.jobs,
            retry: RetryPolicy {
                max_attempts: o.retry_attempts.unwrap_or(rd.max_attempts),
                backoff_base_ms: o.retry_backoff_ms.unwrap_or(rd.backoff_base_ms),
                deadline_ms: o.cell_deadline_ms.filter(|&ms| ms > 0),
            },
            checkpoint,
            store_path: o.store_path.filter(|s| !s.is_empty()),
            store_compact: o.store_compact.unwrap_or(false),
            fault_plan: o.fault_plan.unwrap_or_default(),
            trace_cache: o.trace_cache,
            lab_dir: o.lab_dir,
            verbose: o.verbose.unwrap_or(false),
            validate_thresholds: o.validate_thresholds,
            baseline: o.baseline,
        })
    }

    /// Validates the request: non-empty grid, loadable workload files,
    /// known workload names (with a did-you-mean suggestion from the
    /// registry), a parseable fault plan. Returns `self` unchanged on
    /// success.
    ///
    /// # Errors
    ///
    /// Returns a one-line message naming the offending field.
    pub fn validated(self) -> Result<Self, String> {
        if self.workloads.is_empty() {
            return Err("workloads must not be empty".to_string());
        }
        if self.systems.is_empty() {
            return Err("systems must not be empty".to_string());
        }
        // Hand-built requests (`SweepRequest { workload_files, .. }`)
        // skip `from_overlay`; registration is idempotent, so repeating
        // it here keeps both paths sound.
        register_workload_files(&self.workload_files)?;
        for w in &self.workloads {
            if registry::lookup(w).is_none() {
                return Err(match registry::suggest(w) {
                    Some(s) => format!("unknown workload {w:?} (did you mean {s:?}?)"),
                    None => format!("unknown workload {w:?}"),
                });
            }
        }
        crate::fault::FaultPlan::parse(&self.fault_plan).map_err(|e| format!("fault_plan: {e}"))?;
        Ok(self)
    }

    /// Builder: replaces the workload list.
    #[must_use]
    pub fn with_workloads(mut self, workloads: &[&str]) -> Self {
        self.workloads = workloads.iter().map(ToString::to_string).collect();
        self
    }

    /// Builder: replaces the workload-file list.
    #[must_use]
    pub fn with_workload_files(mut self, files: &[&str]) -> Self {
        self.workload_files = files.iter().map(ToString::to_string).collect();
        self
    }

    /// Builder: replaces the input set.
    #[must_use]
    pub fn with_input(mut self, input: InputSet) -> Self {
        self.input = input;
        self
    }

    /// Builder: replaces the system list.
    #[must_use]
    pub fn with_systems(mut self, systems: &[SystemKind]) -> Self {
        self.systems = systems.to_vec();
        self
    }

    /// Builder: sets the worker-thread count.
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = Some(jobs);
        self
    }

    /// Builder: sets the retry/deadline policy.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Builder: sets the persistent result-store path.
    #[must_use]
    pub fn with_store(mut self, path: impl Into<String>) -> Self {
        self.store_path = Some(path.into());
        self
    }

    /// The sweep plan of this request's grid: the full workloads ×
    /// systems cross product on the configured input.
    pub fn plan(&self, name: impl Into<String>) -> SweepPlan {
        let refs: Vec<&str> = self.workloads.iter().map(String::as_str).collect();
        SweepPlan::cross(name, &refs, self.input, &self.systems)
    }

    /// The parsed fault-injection plan.
    pub fn parsed_fault_plan(&self) -> crate::fault::FaultPlan {
        // Validated at construction; an empty plan parses to none().
        crate::fault::FaultPlan::parse(&self.fault_plan)
            .unwrap_or_else(|_| crate::fault::FaultPlan::none())
    }

    /// The number of grid cells (`workloads × systems`).
    pub fn cell_count(&self) -> usize {
        self.workloads.len() * self.systems.len()
    }

    /// Full JSON form: every field, resolved. Parses back through
    /// [`SweepRequest::from_json`].
    pub fn to_json(&self) -> Json {
        let o = RequestOverlay {
            workloads: Some(self.workloads.clone()),
            workload_files: (!self.workload_files.is_empty()).then(|| self.workload_files.clone()),
            input: Some(self.input),
            systems: Some(self.systems.clone()),
            jobs: self.jobs,
            retry_attempts: Some(self.retry.max_attempts),
            retry_backoff_ms: Some(self.retry.backoff_base_ms),
            cell_deadline_ms: Some(self.retry.deadline_ms.unwrap_or(0)),
            checkpoint_dir: self
                .checkpoint
                .as_ref()
                .map(|c| c.dir.to_string_lossy().into_owned()),
            warm_cycles: self.checkpoint.as_ref().map(|c| c.warm_cycles),
            store_path: self.store_path.clone(),
            store_compact: Some(self.store_compact),
            fault_plan: (!self.fault_plan.is_empty()).then(|| self.fault_plan.clone()),
            trace_cache: self.trace_cache.clone(),
            lab_dir: self.lab_dir.clone(),
            verbose: Some(self.verbose),
            validate_thresholds: self.validate_thresholds.clone(),
            baseline: self.baseline.clone(),
        };
        o.to_json()
    }

    /// Parses a full request document over the defaults (no
    /// environment layering — the service uses this for POST bodies).
    ///
    /// # Errors
    ///
    /// Propagates [`RequestOverlay::from_json`] and
    /// [`SweepRequest::validated`] errors.
    pub fn from_json(j: &Json) -> Result<Self, String> {
        Self::from_overlay(RequestOverlay::from_json(j)?)?.validated()
    }

    /// The legacy-variable rendering of every *configured* setting, for
    /// [`compat::install_overrides`]: after installation, deep readers
    /// (`Lab::new`, `Manifest::out_dir`, `RetryPolicy::from_env`, …)
    /// observe this request instead of the raw environment.
    pub fn legacy_env_map(&self) -> Vec<(String, String)> {
        let mut map = vec![
            (
                "BENCH_SWEEP_WORKLOADS".to_string(),
                self.workloads.join(","),
            ),
            (
                "BENCH_SWEEP_INPUT".to_string(),
                format!("{:?}", self.input).to_lowercase(),
            ),
            (
                "BENCH_SWEEP_SYSTEMS".to_string(),
                self.systems
                    .iter()
                    .map(|s| s.label().to_string())
                    .collect::<Vec<_>>()
                    .join(","),
            ),
            (
                "BENCH_RETRY_ATTEMPTS".to_string(),
                self.retry.max_attempts.to_string(),
            ),
            (
                "BENCH_RETRY_BACKOFF_MS".to_string(),
                self.retry.backoff_base_ms.to_string(),
            ),
        ];
        if !self.workload_files.is_empty() {
            map.push((
                "BENCH_WORKLOAD_FILES".to_string(),
                self.workload_files.join(","),
            ));
        }
        if let Some(n) = self.jobs {
            map.push(("BENCH_JOBS".to_string(), n.to_string()));
        }
        if let Some(ms) = self.retry.deadline_ms {
            map.push(("BENCH_CELL_DEADLINE_MS".to_string(), ms.to_string()));
        }
        if let Some(c) = &self.checkpoint {
            map.push((
                "BENCH_CHECKPOINT_DIR".to_string(),
                c.dir.to_string_lossy().into_owned(),
            ));
            map.push(("BENCH_WARM_CYCLES".to_string(), c.warm_cycles.to_string()));
        }
        if let Some(p) = &self.store_path {
            map.push(("BENCH_RESULT_STORE".to_string(), p.clone()));
        }
        if self.store_compact {
            map.push(("BENCH_STORE_COMPACT".to_string(), "1".to_string()));
        }
        if !self.fault_plan.is_empty() {
            map.push(("BENCH_FAULT_PLAN".to_string(), self.fault_plan.clone()));
        }
        if let Some(t) = &self.trace_cache {
            map.push(("BENCH_TRACE_CACHE".to_string(), t.clone()));
        }
        if let Some(l) = &self.lab_dir {
            map.push(("BENCH_LAB_DIR".to_string(), l.clone()));
        }
        if self.verbose {
            map.push(("BENCH_VERBOSE".to_string(), "1".to_string()));
        }
        if let Some(t) = &self.validate_thresholds {
            map.push(("BENCH_VALIDATE_THRESHOLDS".to_string(), t.clone()));
        }
        if let Some(b) = &self.baseline {
            map.push(("BENCH_BASELINE".to_string(), b.clone()));
        }
        map
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn defaults_cover_the_paper_grid() {
        let r = SweepRequest::default();
        assert_eq!(r.workloads.len(), 15);
        assert_eq!(r.systems.len(), 7);
        assert_eq!(r.input, InputSet::Ref);
        assert_eq!(r.cell_count(), 105);
        assert!(r.clone().validated().is_ok());
    }

    #[test]
    fn full_request_roundtrips_through_json() {
        let r = SweepRequest::default()
            .with_workloads(&["mst", "health"])
            .with_input(InputSet::Test)
            .with_systems(&[SystemKind::StreamOnly, SystemKind::StreamEcdpThrottled])
            .with_jobs(2)
            .with_retry(RetryPolicy {
                max_attempts: 5,
                backoff_base_ms: 10,
                deadline_ms: Some(4000),
            })
            .with_store("target/results.store");
        let text = r.to_json().to_string_pretty();
        let parsed = SweepRequest::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(r, parsed);
    }

    #[test]
    fn overlay_json_rejects_unknown_fields_and_bad_versions() {
        let bad = Json::parse(r#"{"jbos": 4}"#).unwrap();
        assert!(RequestOverlay::from_json(&bad)
            .unwrap_err()
            .contains("jbos"));
        let v9 = Json::parse(r#"{"schema_version": 9}"#).unwrap();
        assert!(RequestOverlay::from_json(&v9)
            .unwrap_err()
            .contains("schema_version 9"));
        // Version-1 documents (pre-`workload_files`) still parse.
        let v1 = Json::parse(r#"{"schema_version": 1, "jobs": 4}"#).unwrap();
        assert_eq!(RequestOverlay::from_json(&v1).unwrap().jobs, Some(4));
        let zero = Json::parse(r#"{"jobs": 0}"#).unwrap();
        assert!(RequestOverlay::from_json(&zero).is_err());
        let badsys = Json::parse(r#"{"systems": ["warp-drive"]}"#).unwrap();
        assert!(RequestOverlay::from_json(&badsys)
            .unwrap_err()
            .contains("warp-drive"));
        let badplan = Json::parse(r#"{"fault_plan": "meteor@*"}"#).unwrap();
        assert!(RequestOverlay::from_json(&badplan)
            .unwrap_err()
            .contains("fault_plan"));
    }

    #[test]
    fn precedence_is_flags_over_file_over_env() {
        let env = RequestOverlay {
            jobs: Some(8),
            store_path: Some("env.store".to_string()),
            ..RequestOverlay::default()
        };
        let file = RequestOverlay {
            input: Some(InputSet::Test),
            ..RequestOverlay::default()
        };
        let flags = RequestOverlay {
            jobs: Some(2),
            ..RequestOverlay::default()
        };
        let r = SweepRequest::resolve(flags, Some(file), env).unwrap();
        assert_eq!(r.jobs, Some(2), "flag beats env");
        assert_eq!(r.input, InputSet::Test, "file beats default");
        assert_eq!(r.store_path.as_deref(), Some("env.store"));
    }

    #[test]
    fn file_env_disagreement_is_a_conflict_naming_both() {
        let env = RequestOverlay {
            jobs: Some(8),
            ..RequestOverlay::default()
        };
        let file = RequestOverlay {
            jobs: Some(4),
            ..RequestOverlay::default()
        };
        let err = SweepRequest::resolve(RequestOverlay::default(), Some(file), env).unwrap_err();
        assert!(err.contains("--config"), "{err}");
        assert!(err.contains("BENCH_JOBS"), "{err}");
        // Agreement is not a conflict.
        let file = RequestOverlay {
            jobs: Some(8),
            ..RequestOverlay::default()
        };
        let env = RequestOverlay {
            jobs: Some(8),
            ..RequestOverlay::default()
        };
        assert!(SweepRequest::resolve(RequestOverlay::default(), Some(file), env).is_ok());
    }

    #[test]
    fn flag_on_a_field_silences_its_file_env_conflict() {
        let env = RequestOverlay {
            jobs: Some(8),
            ..RequestOverlay::default()
        };
        let file = RequestOverlay {
            jobs: Some(4),
            ..RequestOverlay::default()
        };
        let flags = RequestOverlay {
            jobs: Some(2),
            ..RequestOverlay::default()
        };
        let r = SweepRequest::resolve(flags, Some(file), env).unwrap();
        assert_eq!(r.jobs, Some(2), "the flag decides the conflicted field");
        // A flag on an unrelated field does not silence the conflict.
        let env = RequestOverlay {
            jobs: Some(8),
            ..RequestOverlay::default()
        };
        let file = RequestOverlay {
            jobs: Some(4),
            ..RequestOverlay::default()
        };
        let flags = RequestOverlay {
            store_path: Some("flag.store".to_string()),
            ..RequestOverlay::default()
        };
        assert!(SweepRequest::resolve(flags, Some(file), env).is_err());
    }

    #[test]
    fn validation_rejects_empty_and_unknown() {
        let r = SweepRequest {
            workloads: vec![],
            ..SweepRequest::default()
        };
        assert!(r.validated().is_err());
        let r = SweepRequest::default().with_workloads(&["no-such-workload"]);
        assert!(r.validated().unwrap_err().contains("no-such-workload"));
        // Near-misses get a registry suggestion.
        let r = SweepRequest::default().with_workloads(&["libquantm"]);
        let err = r.validated().unwrap_err();
        assert!(err.contains("did you mean \"libquantum\"?"), "{err}");
        let r = SweepRequest {
            systems: vec![],
            ..SweepRequest::default()
        };
        assert!(r.validated().is_err());
    }

    #[test]
    fn plan_builds_the_cross_product() {
        let r = SweepRequest::default()
            .with_workloads(&["mst", "health"])
            .with_input(InputSet::Test)
            .with_systems(&[SystemKind::StreamOnly, SystemKind::StreamCdp]);
        let plan = r.plan("unit");
        assert_eq!(plan.cells.len(), 4);
        assert_eq!(plan.cells[0].workload, "mst");
        assert_eq!(plan.cells[3].system, SystemKind::StreamCdp);
    }

    #[test]
    fn legacy_env_map_covers_configured_fields() {
        let r = SweepRequest::default().with_jobs(3).with_store("s.store");
        let map = r.legacy_env_map();
        let get = |k: &str| map.iter().find(|(var, _)| var == k).map(|(_, v)| v.clone());
        assert_eq!(get("BENCH_JOBS").as_deref(), Some("3"));
        assert_eq!(get("BENCH_RESULT_STORE").as_deref(), Some("s.store"));
        assert_eq!(get("BENCH_SWEEP_INPUT").as_deref(), Some("ref"));
        assert_eq!(get("BENCH_VERBOSE"), None, "defaults are not installed");
    }

    #[test]
    fn every_legacy_var_is_in_the_mapping_table() {
        // The DESIGN.md table and the conflict checker both key off
        // LEGACY_ENV; a new knob must be added there.
        assert_eq!(LEGACY_ENV.len(), 18);
        assert!(LEGACY_ENV.iter().all(|(_, v)| v.starts_with("BENCH_")));
    }

    #[test]
    fn workload_files_define_the_grid_and_roundtrip() {
        // The same overlay a `sweepd` POST body or `--config` file
        // produces: a workload file and no explicit workload list.
        let dir = std::env::temp_dir();
        let path = dir.join(format!("request-unit-{}.wl", std::process::id()));
        std::fs::write(
            &path,
            "workload req_unit {\n  seed 3;\n  node N { size 8; ptr next @ 4; field v @ 0; }\n\
             \x20 chain c: N { count 5; }\n  traverse c { visit { load v; } }\n}\n",
        )
        .unwrap();
        let overlay = RequestOverlay {
            workload_files: Some(vec![path.to_string_lossy().into_owned()]),
            ..RequestOverlay::default()
        };
        let r = SweepRequest::resolve(overlay, None, RequestOverlay::default()).unwrap();
        assert_eq!(
            r.workloads,
            vec!["req_unit".to_string()],
            "with no explicit list, the loaded workloads are the grid"
        );
        let parsed =
            SweepRequest::from_json(&Json::parse(&r.to_json().to_string_pretty()).unwrap())
                .unwrap();
        assert_eq!(r, parsed);

        // An explicit list wins over the loaded names.
        let overlay = RequestOverlay {
            workload_files: Some(vec![path.to_string_lossy().into_owned()]),
            workloads: Some(vec!["mst".to_string()]),
            ..RequestOverlay::default()
        };
        let r = SweepRequest::resolve(overlay, None, RequestOverlay::default()).unwrap();
        assert_eq!(r.workloads, vec!["mst".to_string()]);
        std::fs::remove_file(&path).ok();

        // Unsupported extensions are rejected with the field name.
        let overlay = RequestOverlay {
            workload_files: Some(vec!["spec.yaml".to_string()]),
            ..RequestOverlay::default()
        };
        let err = SweepRequest::resolve(overlay, None, RequestOverlay::default()).unwrap_err();
        assert!(err.contains("workload_files"), "{err}");
        assert!(err.contains("yaml"), "{err}");
    }
}
