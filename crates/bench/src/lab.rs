//! Caching layer for experiment composition: traces, compiler artifacts and
//! single-core run results are computed once per process.

use std::collections::HashMap;

use ecdp::profile::{profile_workload, PgProfile};
use ecdp::system::{run_system, CompilerArtifacts, SystemKind};
use sim_core::{RunStats, Trace};
use workloads::{by_name, InputSet};

/// A memoising experiment context.
///
/// # Example
///
/// ```no_run
/// use bench::Lab;
/// use ecdp::system::SystemKind;
///
/// let mut lab = Lab::new();
/// let base = lab.run("mst", SystemKind::StreamOnly).ipc();
/// let ours = lab.run("mst", SystemKind::StreamEcdpThrottled).ipc();
/// println!("speedup: {:.2}", ours / base);
/// ```
pub struct Lab {
    traces: HashMap<(String, InputSet), Trace>,
    profiles: HashMap<String, PgProfile>,
    artifacts: HashMap<String, CompilerArtifacts>,
    runs: HashMap<(String, SystemKind), RunStats>,
    /// When true, prints one progress line per fresh simulation to stderr.
    pub verbose: bool,
}

impl Default for Lab {
    fn default() -> Self {
        Self::new()
    }
}

impl Lab {
    /// Creates an empty lab.
    pub fn new() -> Self {
        Lab {
            traces: HashMap::new(),
            profiles: HashMap::new(),
            artifacts: HashMap::new(),
            runs: HashMap::new(),
            verbose: std::env::var_os("BENCH_VERBOSE").is_some(),
        }
    }

    /// The (cached) trace for a workload and input set.
    ///
    /// With `BENCH_TRACE_CACHE=<dir>` in the environment, traces are also
    /// cached on disk in the `sim_core::trace_io` format — useful when many
    /// per-figure binaries run as separate processes. The cache is keyed by
    /// workload name and input set only; delete the directory after
    /// changing workload generators.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a known workload.
    pub fn trace(&mut self, name: &str, input: InputSet) -> &Trace {
        let key = (name.to_string(), input);
        if !self.traces.contains_key(&key) {
            let disk = std::env::var_os("BENCH_TRACE_CACHE").map(|dir| {
                let mut p = std::path::PathBuf::from(dir);
                p.push(format!("{name}-{input:?}.trc"));
                p
            });
            if let Some(path) = disk.as_ref().filter(|p| p.exists()) {
                if let Ok(f) = std::fs::File::open(path) {
                    if let Ok(t) = sim_core::trace_io::read(&mut std::io::BufReader::new(f)) {
                        if self.verbose {
                            eprintln!("[lab] loaded {name} {input:?} from cache");
                        }
                        self.traces.insert(key.clone(), t);
                        return &self.traces[&key];
                    }
                }
            }
            let wl = by_name(name).unwrap_or_else(|| panic!("unknown workload {name}"));
            if self.verbose {
                eprintln!("[lab] generating {name} {input:?}");
            }
            let t = wl.generate(input);
            if let Some(path) = disk {
                if let Some(parent) = path.parent() {
                    let _ = std::fs::create_dir_all(parent);
                }
                if let Ok(f) = std::fs::File::create(&path) {
                    let _ = sim_core::trace_io::write(&t, &mut std::io::BufWriter::new(f));
                }
            }
            self.traces.insert(key.clone(), t);
        }
        &self.traces[&key]
    }

    /// The (cached) pointer-group profile from the workload's train input.
    pub fn profile(&mut self, name: &str) -> &PgProfile {
        if !self.profiles.contains_key(name) {
            let _ = self.trace(name, InputSet::Train);
            let t = &self.traces[&(name.to_string(), InputSet::Train)];
            if self.verbose {
                eprintln!("[lab] profiling {name}");
            }
            let p = profile_workload(t);
            self.profiles.insert(name.to_string(), p);
        }
        &self.profiles[name]
    }

    /// The (cached) compiler artifacts derived from the train profile.
    pub fn artifacts(&mut self, name: &str) -> CompilerArtifacts {
        if !self.artifacts.contains_key(name) {
            let p = self.profile(name).clone();
            self.artifacts
                .insert(name.to_string(), CompilerArtifacts::from_profile(&p));
        }
        self.artifacts[name].clone()
    }

    /// Runs (or returns the cached run of) `name`'s ref input on `kind`.
    pub fn run(&mut self, name: &str, kind: SystemKind) -> RunStats {
        let key = (name.to_string(), kind);
        if !self.runs.contains_key(&key) {
            let art = self.artifacts(name);
            let _ = self.trace(name, InputSet::Ref);
            let t = &self.traces[&(name.to_string(), InputSet::Ref)];
            if self.verbose {
                eprintln!("[lab] running {name} on {}", kind.label());
            }
            let stats = run_system(kind, t, &art);
            self.runs.insert(key.clone(), stats);
        }
        self.runs[&key].clone()
    }

    /// Speedup of `kind` over the stream-only baseline for one workload.
    pub fn speedup(&mut self, name: &str, kind: SystemKind) -> f64 {
        let base = self.run(name, SystemKind::StreamOnly).ipc();
        self.run(name, kind).ipc() / base
    }

    /// BPKI ratio of `kind` versus the stream-only baseline.
    pub fn bpki_ratio(&mut self, name: &str, kind: SystemKind) -> f64 {
        let base = self.run(name, SystemKind::StreamOnly).bpki();
        self.run(name, kind).bpki() / base.max(1e-9)
    }
}

impl std::fmt::Debug for Lab {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Lab")
            .field("traces", &self.traces.len())
            .field("runs", &self.runs.len())
            .finish()
    }
}
