//! Thread-safe caching layer for experiment composition.
//!
//! A [`Lab`] memoizes workload traces, train-input profiles, compiler
//! artifacts and single-core run results behind compute-once cells, so
//! each is computed **exactly once per process** no matter how many
//! figures request it or how many worker threads run concurrently
//! (concurrent requesters of the same cell block on the leader instead of
//! recomputing). `Lab` is `Clone + Send + Sync`; clones share the same
//! cache, which is what the parallel sweep executor in [`crate::sweep`]
//! relies on.
//!
//! The cache is failure-aware: a cell whose initializer returns an error
//! or panics stays *empty* (it does not cache the failure and does not
//! poison the map), so an injected or transient fault in one sweep cell
//! never wedges the remaining cells — the property the fault-tolerance
//! integration tests pin down.

use std::collections::HashMap;
use std::hash::Hash;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use ecdp::profile::{profile_workload, PgProfile};
use ecdp::system::{CompilerArtifacts, SystemBuilder, SystemKind, SystemRun};
use sim_core::{DiagnosticSnapshot, ObsConfig, RunStats, RunTrace, SimError, Snapshot, Trace};
use workloads::{registry, InputSet, StreamSource};

use crate::fault::{FaultAction, FaultPlan};
use crate::manifest::{Manifest, RunOutcome, RunRecord};

/// Locks a mutex, recovering from poisoning.
///
/// Every value behind these locks is a plain cache entry that is only
/// written *after* its compute completed, so a panic on another thread
/// never leaves it half-updated — recovering the guard is always safe
/// and keeps one panicking sweep cell from wedging the whole lab.
fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A concurrent compute-once map: the first requester of a key runs the
/// initializer, every other concurrent requester blocks until the value
/// is ready, and later requesters get the cached clone.
///
/// Failed initializers (error return or panic) leave the cell empty, so
/// the next requester retries the compute instead of observing a wedged
/// or poisoned entry.
struct OnceMap<K, V> {
    inner: Mutex<HashMap<K, Arc<Mutex<Option<V>>>>>,
}

impl<K: Eq + Hash + Clone, V: Clone> OnceMap<K, V> {
    fn new() -> Self {
        OnceMap {
            inner: Mutex::new(HashMap::new()),
        }
    }

    /// Returns the cached value or runs `f` to produce it. `Err` is
    /// propagated to the caller and *not* cached; a panicking `f`
    /// likewise leaves the cell empty for the next requester.
    fn get_or_try_init<E>(&self, key: &K, f: impl FnOnce() -> Result<V, E>) -> Result<V, E> {
        let cell = {
            let mut map = lock_recover(&self.inner);
            map.entry(key.clone()).or_default().clone()
        };
        // The map lock is released here: a slow initializer only blocks
        // requesters of the *same* key, never the whole cache.
        let mut slot = lock_recover(&cell);
        if let Some(v) = slot.as_ref() {
            return Ok(v.clone());
        }
        let v = f()?;
        *slot = Some(v.clone());
        Ok(v)
    }

    fn get_or_init(&self, key: &K, f: impl FnOnce() -> V) -> V {
        self.get_or_try_init::<std::convert::Infallible>(key, || Ok(f()))
            .unwrap_or_else(|e| match e {})
    }

    /// The cached value for `key`, if its compute has completed.
    fn get(&self, key: &K) -> Option<V> {
        let cell = lock_recover(&self.inner).get(key)?.clone();
        let slot = lock_recover(&cell);
        slot.clone()
    }

    fn len(&self) -> usize {
        lock_recover(&self.inner).len()
    }

    /// All initialized entries (skips cells still being computed).
    fn snapshot(&self) -> Vec<(K, V)> {
        let map = lock_recover(&self.inner);
        map.iter()
            .filter_map(|(k, cell)| {
                let slot = cell.try_lock().ok()?;
                slot.as_ref().map(|v| (k.clone(), v.clone()))
            })
            .collect()
    }
}

/// On-disk warm-checkpoint store configuration.
///
/// With a store configured, each sweep cell's first run captures a
/// warm-state [`Snapshot`] after `warm_cycles` simulated cycles and
/// writes it to `dir`; later runs of the same cell (typically from
/// another process — the in-process result cache already deduplicates
/// within one) fork from the stored snapshot instead of re-simulating
/// the warmup. Results are bit-identical either way (see
/// `bench::difftest`), so the store is purely a wall-clock optimization,
/// like `BENCH_TRACE_CACHE` is for trace generation.
///
/// Checkpoints are keyed by workload, input, system, machine-config
/// hash and warm-cycle count. A corrupt, truncated or stale file is
/// *never* fatal: the lab falls back to a cold run for that cell,
/// rewrites the checkpoint, and records the disposition in the cell's
/// manifest record (`checkpoint: "fallback:<reason>"`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointConfig {
    /// Directory holding `.snap` files (created on demand).
    pub dir: PathBuf,
    /// Cycle count at which the warm snapshot is captured.
    pub warm_cycles: u64,
}

impl CheckpointConfig {
    /// Default capture point when `BENCH_WARM_CYCLES` is unset: late
    /// enough that prefetcher tables and caches are warm on the test
    /// inputs, early enough that most runs have not finished.
    pub const DEFAULT_WARM_CYCLES: u64 = 200_000;

    /// Creates a store rooted at `dir` capturing after `warm_cycles`.
    pub fn new(dir: impl Into<PathBuf>, warm_cycles: u64) -> Self {
        CheckpointConfig {
            dir: dir.into(),
            warm_cycles,
        }
    }

    /// The store configured via `BENCH_CHECKPOINT_DIR` (and optionally
    /// `BENCH_WARM_CYCLES`), read through the
    /// [`crate::request::compat`] gate, or `None` when unset.
    pub fn from_env() -> Option<Self> {
        let dir = crate::request::compat::setting("BENCH_CHECKPOINT_DIR")?;
        let warm_cycles = crate::request::compat::setting("BENCH_WARM_CYCLES")
            .and_then(|s| s.parse().ok())
            .unwrap_or(Self::DEFAULT_WARM_CYCLES);
        Some(CheckpointConfig::new(PathBuf::from(dir), warm_cycles))
    }

    /// The checkpoint file for one sweep cell. The machine-config hash
    /// and warm-cycle count are part of the key, so a config change or
    /// a different capture point misses cleanly instead of loading a
    /// mismatched snapshot.
    pub fn cell_path(&self, name: &str, input: InputSet, kind: SystemKind) -> PathBuf {
        self.dir.join(format!(
            "{name}-{}-{}-{:016x}-{}.snap",
            format!("{input:?}").to_lowercase(),
            kind.label(),
            crate::manifest::config_hash(),
            self.warm_cycles
        ))
    }
}

/// Outcome of trying to load a cell's on-disk checkpoint.
enum CheckpointLoad {
    /// No checkpoint on disk yet.
    Missing,
    /// Parsed and CRC-verified.
    Loaded(Box<Snapshot>),
    /// Unreadable, corrupt or otherwise rejected — fall back cold.
    Rejected(String),
}

fn load_checkpoint(path: &Path, fault: Option<FaultAction>) -> CheckpointLoad {
    let mut bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return CheckpointLoad::Missing,
        Err(e) => return CheckpointLoad::Rejected(format!("unreadable: {e}")),
    };
    if matches!(fault, Some(FaultAction::CorruptCheckpoint)) && !bytes.is_empty() {
        // Flip a payload byte so the *real* CRC check drives the
        // fallback path, not a synthetic error.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
    }
    match Snapshot::from_bytes(&bytes) {
        Ok(s) => CheckpointLoad::Loaded(Box::new(s)),
        Err(e) => CheckpointLoad::Rejected(e.to_string()),
    }
}

/// Atomic write (temp file + rename) so a concurrent reader never sees
/// a half-written checkpoint.
fn write_checkpoint(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)
}

/// Sleeps `ms` (the injected [`FaultAction::Slow`] delay) in short
/// chunks, failing with [`SimError::DeadlineExceeded`] as soon as the
/// attempt's wall-clock budget — measured from `started` — runs out.
/// This is what makes an injected slowdown *transient*: the deadline
/// kills the stalled attempt and the supervisor's retry runs clean.
fn sleep_under_deadline(
    ms: u64,
    started: Instant,
    deadline: Option<std::time::Duration>,
) -> Result<(), SimError> {
    use std::time::Duration;
    let total = Duration::from_millis(ms);
    let Some(limit) = deadline else {
        std::thread::sleep(total);
        return Ok(());
    };
    let end = started + total;
    loop {
        let now = Instant::now();
        if now.duration_since(started) >= limit {
            return Err(SimError::DeadlineExceeded {
                deadline_ms: limit.as_millis() as u64,
                snapshot: DiagnosticSnapshot::default(),
            });
        }
        if now >= end {
            return Ok(());
        }
        let chunk = (end - now)
            .min(limit - now.duration_since(started))
            .min(Duration::from_millis(10));
        std::thread::sleep(chunk);
    }
}

/// Run result, the wall-clock milliseconds of the fresh compute, and
/// the warm-checkpoint disposition (`None` without a store).
type RunEntry = (RunStats, f64, Option<String>);

/// What a sweep cell replays: a resident in-memory trace (built-in and
/// DSL workloads) or an external trace streamed from disk in bounded
/// windows (registered `.xtrc` files).
enum CellInput<'a> {
    Resident(&'a Trace),
    Streamed(&'a StreamSource),
}

impl CellInput<'_> {
    /// Runs a built system on this input. Streamed sources re-open (and
    /// re-validate against the registered content hash) per run, so each
    /// run has its own file cursor and the statistics stay bit-identical
    /// to a resident replay of the same ops.
    fn run(&self, builder: SystemBuilder<'_>) -> Result<SystemRun, SimError> {
        match self {
            CellInput::Resident(t) => builder.run(t),
            CellInput::Streamed(src) => {
                // The file was validated at registration; a failure here
                // means it changed or vanished mid-sweep, which is as
                // unrecoverable as a trace-generation bug.
                let mut trace = src
                    .open()
                    .unwrap_or_else(|e| panic!("streamed workload trace unusable: {e}"));
                builder.run_streamed(&mut trace)
            }
        }
    }
}

struct LabShared {
    traces: OnceMap<(String, InputSet), Arc<Trace>>,
    profiles: OnceMap<String, Arc<PgProfile>>,
    artifacts: OnceMap<String, Arc<CompilerArtifacts>>,
    runs: OnceMap<(String, InputSet, SystemKind), RunEntry>,
    /// Observability traces of runs executed with [`Lab::try_run_traced`].
    traces_obs: OnceMap<(String, InputSet, SystemKind), Arc<RunTrace>>,
    faults: FaultPlan,
    checkpoints: Option<CheckpointConfig>,
    verbose: bool,
}

/// A memoizing, thread-safe experiment context.
///
/// # Example
///
/// ```no_run
/// use bench::Lab;
/// use ecdp::system::SystemKind;
///
/// let lab = Lab::new();
/// let base = lab.run("mst", SystemKind::StreamOnly).ipc();
/// let ours = lab.run("mst", SystemKind::StreamEcdpThrottled).ipc();
/// println!("speedup: {:.2}", ours / base);
/// ```
#[derive(Clone)]
pub struct Lab {
    shared: Arc<LabShared>,
}

impl Default for Lab {
    fn default() -> Self {
        Self::new()
    }
}

impl Lab {
    /// Creates an empty lab. Set `BENCH_VERBOSE` in the environment for
    /// one progress line per fresh simulation on stderr; set
    /// `BENCH_FAULT_PLAN` (see [`FaultPlan`]) to inject failures into
    /// matching cells; set `BENCH_CHECKPOINT_DIR` (see
    /// [`CheckpointConfig`]) to reuse warm-state checkpoints across
    /// processes.
    pub fn new() -> Self {
        Self::with_checkpoints(FaultPlan::from_env(), CheckpointConfig::from_env())
    }

    /// Creates an empty lab with an explicit fault-injection plan
    /// (tests use this instead of mutating the process environment).
    /// The checkpoint store still comes from the environment.
    pub fn with_faults(faults: FaultPlan) -> Self {
        Self::with_checkpoints(faults, CheckpointConfig::from_env())
    }

    /// Creates an empty lab with an explicit fault plan and warm
    /// checkpoint store (`None` disables checkpointing).
    pub fn with_checkpoints(faults: FaultPlan, checkpoints: Option<CheckpointConfig>) -> Self {
        Lab {
            shared: Arc::new(LabShared {
                traces: OnceMap::new(),
                profiles: OnceMap::new(),
                artifacts: OnceMap::new(),
                runs: OnceMap::new(),
                traces_obs: OnceMap::new(),
                faults,
                checkpoints,
                verbose: crate::request::compat::setting_is_set("BENCH_VERBOSE"),
            }),
        }
    }

    /// The (cached) trace for a workload and input set; generated at most
    /// once per process.
    ///
    /// With `BENCH_TRACE_CACHE=<dir>` in the environment, traces are also
    /// cached on disk in the `sim_core::trace_io` format — useful when
    /// many per-figure binaries run as separate processes. The cache is
    /// keyed by workload name and input set only; delete the directory
    /// after changing workload generators.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a known workload.
    pub fn trace(&self, name: &str, input: InputSet) -> Arc<Trace> {
        let key = (name.to_string(), input);
        let shared = &self.shared;
        shared.traces.get_or_init(&key, || {
            let disk = crate::request::compat::setting("BENCH_TRACE_CACHE").map(|dir| {
                let mut p = PathBuf::from(dir);
                p.push(format!("{name}-{input:?}.trc"));
                p
            });
            if let Some(path) = disk.as_ref().filter(|p| p.exists()) {
                if let Ok(f) = std::fs::File::open(path) {
                    if let Ok(t) = sim_core::trace_io::read(&mut std::io::BufReader::new(f)) {
                        if shared.verbose {
                            eprintln!("[lab] loaded {name} {input:?} from cache");
                        }
                        return Arc::new(t);
                    }
                }
            }
            let wl = registry::lookup(name).unwrap_or_else(|| panic!("unknown workload {name}"));
            assert!(
                !wl.is_streamed(),
                "streamed workload {name} has no resident trace; it replays in bounded \
                 windows through the run path"
            );
            if shared.verbose {
                eprintln!("[lab] generating {name} {input:?}");
            }
            let t = wl.generate(input);
            if let Some(path) = disk {
                if let Some(parent) = path.parent() {
                    let _ = std::fs::create_dir_all(parent);
                }
                if let Ok(f) = std::fs::File::create(&path) {
                    let _ = sim_core::trace_io::write(&t, &mut std::io::BufWriter::new(f));
                }
            }
            Arc::new(t)
        })
    }

    /// The (cached) pointer-group profile from the workload's train
    /// input; profiled at most once per process.
    pub fn profile(&self, name: &str) -> Arc<PgProfile> {
        let key = name.to_string();
        self.shared.profiles.get_or_init(&key, || {
            let t = self.trace(name, InputSet::Train);
            if self.shared.verbose {
                eprintln!("[lab] profiling {name}");
            }
            Arc::new(profile_workload(&t))
        })
    }

    /// The (cached) compiler artifacts derived from the train profile.
    pub fn artifacts(&self, name: &str) -> Arc<CompilerArtifacts> {
        let key = name.to_string();
        self.shared.artifacts.get_or_init(&key, || {
            Arc::new(CompilerArtifacts::from_profile(&self.profile(name)))
        })
    }

    /// Runs (or returns the cached run of) `name`'s `input` trace on
    /// `kind`, using artifacts profiled from the train input.
    ///
    /// Failed runs are not cached: a later request for the same cell
    /// retries the simulation.
    ///
    /// # Errors
    ///
    /// Propagates the [`SimError`] of a wedged or injected-fault run.
    pub fn try_run_on(
        &self,
        name: &str,
        input: InputSet,
        kind: SystemKind,
    ) -> Result<RunStats, SimError> {
        self.try_run_attempt(name, input, kind, 1, None)
    }

    /// The fault plan this lab injects from (the sweep supervisor uses
    /// it to route store-side faults through the result store).
    pub fn faults(&self) -> &FaultPlan {
        &self.shared.faults
    }

    /// Like [`Lab::try_run_on`], but for the sweep supervisor: `attempt`
    /// (1-based) selects which attempt-capped fault rules still fire,
    /// and `deadline` imposes a per-attempt wall-clock budget enforced
    /// by the engine watchdog (and by the injected-`slow` sleep, which
    /// is deadline-interruptible).
    ///
    /// # Errors
    ///
    /// Propagates the [`SimError`] of a wedged, injected-fault or
    /// deadline-overrunning run.
    pub fn try_run_attempt(
        &self,
        name: &str,
        input: InputSet,
        kind: SystemKind,
        attempt: u32,
        deadline: Option<std::time::Duration>,
    ) -> Result<RunStats, SimError> {
        self.try_run_inner(name, input, kind, None, attempt, deadline)
            .map(|(stats, _)| stats)
    }

    /// Like [`Lab::try_run_on`], but with the observability layer
    /// (interval time series + throttle decision trace) enabled; returns
    /// the statistics together with the recorded [`RunTrace`].
    ///
    /// The statistics are bit-identical to an untraced run (the
    /// disabled-observer fast path is the default; enabling it only adds
    /// bookkeeping outside the simulated machine), so the run *also*
    /// seeds the plain stats cache: a later [`Lab::try_run_on`] of the
    /// same cell is a cache hit.
    ///
    /// # Errors
    ///
    /// Propagates the [`SimError`] of a wedged or injected-fault run.
    pub fn try_run_traced(
        &self,
        name: &str,
        input: InputSet,
        kind: SystemKind,
    ) -> Result<(RunStats, Arc<RunTrace>), SimError> {
        self.try_run_traced_attempt(name, input, kind, 1, None)
    }

    /// The traced twin of [`Lab::try_run_attempt`].
    ///
    /// # Errors
    ///
    /// Propagates the [`SimError`] of a wedged, injected-fault or
    /// deadline-overrunning run.
    pub fn try_run_traced_attempt(
        &self,
        name: &str,
        input: InputSet,
        kind: SystemKind,
        attempt: u32,
        deadline: Option<std::time::Duration>,
    ) -> Result<(RunStats, Arc<RunTrace>), SimError> {
        let key = (name.to_string(), input, kind);
        let obs = ObsConfig::enabled();
        let (stats, trace) = self.try_run_inner(name, input, kind, Some(obs), attempt, deadline)?;
        Ok((
            stats,
            trace.unwrap_or_else(|| {
                // The cell was already simulated untraced: rerun outside
                // the stats cache to collect the trace, once.
                self.shared.traces_obs.get_or_init(&key, || {
                    let streamed = match registry::lookup(name) {
                        Some(workloads::WorkloadHandle::Streamed(src)) => Some(src),
                        _ => None,
                    };
                    let (art, resident) = match &streamed {
                        Some(_) => (Arc::new(CompilerArtifacts::empty()), None),
                        None => (self.artifacts(name), Some(self.trace(name, input))),
                    };
                    if self.shared.verbose {
                        eprintln!(
                            "[lab] re-running {name} {input:?} on {} for its trace",
                            kind.label()
                        );
                    }
                    let builder = SystemBuilder::new(kind).artifacts(&art).observe(obs);
                    let run = match (&streamed, &resident) {
                        (Some(src), _) => CellInput::Streamed(src.as_ref()).run(builder),
                        (None, Some(t)) => CellInput::Resident(t).run(builder),
                        (None, None) => {
                            unreachable!("non-streamed cell always has a resident trace")
                        }
                    };
                    Arc::new(run.ok().and_then(|r| r.trace).unwrap_or_default())
                })
            }),
        ))
    }

    fn try_run_inner(
        &self,
        name: &str,
        input: InputSet,
        kind: SystemKind,
        obs: Option<ObsConfig>,
        attempt: u32,
        deadline: Option<std::time::Duration>,
    ) -> Result<(RunStats, Option<Arc<RunTrace>>), SimError> {
        let key = (name.to_string(), input, kind);
        let (stats, _, _) = self.shared.runs.get_or_try_init(&key, || {
            let started = Instant::now();
            let fault = self
                .shared
                .faults
                .action_for_attempt(name, input, kind, attempt);
            match fault {
                Some(FaultAction::Panic) => {
                    panic!("injected fault: panic in {name} {input:?} {}", kind.label())
                }
                Some(FaultAction::Livelock) => return Err(crate::fault::run_livelock()),
                Some(FaultAction::Slow(ms)) => sleep_under_deadline(ms, started, deadline)?,
                // CorruptCheckpoint is handled at checkpoint-load time
                // inside run_cell; the store faults (stall, torn-write,
                // short-write, enospc, corrupt-record) dispatch through
                // the result store's write layer, not the compute path.
                Some(_) | None => {}
            }
            // Streamed workloads have no train input to profile (an
            // external trace is addresses, not a program), so they run
            // with empty artifacts and skip the resident-trace cache.
            let streamed = match registry::lookup(name) {
                Some(workloads::WorkloadHandle::Streamed(src)) => Some(src),
                _ => None,
            };
            let (art, resident) = match &streamed {
                Some(_) => (Arc::new(CompilerArtifacts::empty()), None),
                None => (self.artifacts(name), Some(self.trace(name, input))),
            };
            let cell_input = match (&streamed, &resident) {
                (Some(src), _) => CellInput::Streamed(src.as_ref()),
                (None, Some(t)) => CellInput::Resident(t),
                (None, None) => unreachable!("non-streamed cell always has a resident trace"),
            };
            if self.shared.verbose {
                eprintln!("[lab] running {name} {input:?} on {}", kind.label());
            }
            // The deadline covers the whole attempt — injected sleep,
            // trace/profile warm-up and simulation; the engine enforces
            // whatever budget remains once the run itself starts.
            let remaining = deadline.map(|limit| limit.saturating_sub(started.elapsed()));
            let t0 = Instant::now();
            let (run, checkpoint) =
                self.run_cell(name, input, kind, &art, &cell_input, obs, fault, remaining)?;
            if let Some(trace) = run.trace {
                self.shared.traces_obs.get_or_init(&key, || Arc::new(trace));
            }
            Ok((run.stats, t0.elapsed().as_secs_f64() * 1e3, checkpoint))
        })?;
        Ok((stats, self.shared.traces_obs.get(&key)))
    }

    /// Runs one cell, forking from the warm checkpoint store when one is
    /// configured. Returns the run plus the checkpoint disposition.
    ///
    /// A corrupt, unreadable or mismatched checkpoint is a *recoverable*
    /// per-cell event: the cell falls back to a cold run (re-capturing
    /// and rewriting the checkpoint) and the disposition records the
    /// reason. Only genuine simulation errors propagate.
    #[allow(clippy::too_many_arguments)]
    fn run_cell(
        &self,
        name: &str,
        input: InputSet,
        kind: SystemKind,
        art: &CompilerArtifacts,
        t: &CellInput<'_>,
        obs: Option<ObsConfig>,
        fault: Option<FaultAction>,
        deadline: Option<std::time::Duration>,
    ) -> Result<(SystemRun, Option<String>), SimError> {
        if deadline.is_some_and(|d| d.is_zero()) {
            // The attempt's budget was exhausted before the engine even
            // started (e.g. a long injected sleep or trace warm-up).
            return Err(SimError::DeadlineExceeded {
                deadline_ms: 0,
                snapshot: DiagnosticSnapshot::default(),
            });
        }
        let build = || {
            let mut b = SystemBuilder::new(kind).artifacts(art);
            if let Some(cfg) = obs {
                b = b.observe(cfg);
            }
            if let Some(d) = deadline {
                b = b.wall_deadline(d);
            }
            b
        };
        let Some(cp) = self.shared.checkpoints.as_ref() else {
            return Ok((t.run(build())?, None));
        };
        let path = cp.cell_path(name, input, kind);
        let mut status = None;
        match load_checkpoint(&path, fault) {
            CheckpointLoad::Missing => {}
            CheckpointLoad::Loaded(snapshot) => match t.run(build().fork_from(&snapshot)) {
                Ok(run) => return Ok((run, Some("forked".to_string()))),
                // A parseable but stale snapshot (the machine shape
                // changed under the same key) is recoverable too.
                Err(e) if e.kind() == "snapshot-rejected" => {
                    status = Some(format!("fallback:{e}"));
                }
                Err(e) => return Err(e),
            },
            CheckpointLoad::Rejected(reason) => {
                status = Some(format!("fallback:{reason}"));
            }
        }
        if let Some(s) = &status {
            if self.shared.verbose {
                eprintln!("[lab] {name} {input:?} {}: {s}", kind.label());
            }
        }
        // Cold run, (re-)capturing the checkpoint for the next process.
        let run = t.run(build().warm_checkpoint(cp.warm_cycles))?;
        match &run.snapshot {
            Some(snap) => match write_checkpoint(&path, &snap.to_bytes()) {
                Ok(()) => {
                    status.get_or_insert_with(|| "created".to_string());
                }
                Err(e) => {
                    status.get_or_insert_with(|| format!("write-failed: {e}"));
                }
            },
            // The run finished before the capture point; nothing to store.
            None => {
                status.get_or_insert_with(|| "cold".to_string());
            }
        }
        Ok((run, status))
    }

    /// Like [`Lab::try_run_on`], for callers that treat a failed
    /// simulation as fatal.
    ///
    /// # Panics
    ///
    /// Panics with the [`SimError`] message when the run fails.
    pub fn run_on(&self, name: &str, input: InputSet, kind: SystemKind) -> RunStats {
        self.try_run_on(name, input, kind).unwrap_or_else(|e| {
            panic!(
                "simulation of {name} {input:?} on {} failed: {e}",
                kind.label()
            )
        })
    }

    /// Runs (or returns the cached run of) `name`'s ref input on `kind`.
    pub fn run(&self, name: &str, kind: SystemKind) -> RunStats {
        self.run_on(name, InputSet::Ref, kind)
    }

    /// Speedup of `kind` over the stream-only baseline for one workload.
    pub fn speedup(&self, name: &str, kind: SystemKind) -> f64 {
        let base = self.run(name, SystemKind::StreamOnly).ipc();
        self.run(name, kind).ipc() / base
    }

    /// BPKI ratio of `kind` versus the stream-only baseline.
    pub fn bpki_ratio(&self, name: &str, kind: SystemKind) -> f64 {
        let base = self.run(name, SystemKind::StreamOnly).bpki();
        self.run(name, kind).bpki() / base.max(1e-9)
    }

    /// The [`RunRecord`] of one cached run, if it has been executed.
    pub fn record_for(&self, name: &str, input: InputSet, kind: SystemKind) -> Option<RunRecord> {
        let key = (name.to_string(), input, kind);
        let (stats, wall_ms, checkpoint) = self.shared.runs.get(&key)?;
        let mut r = RunRecord::new(name, input, kind, &stats, wall_ms);
        r.checkpoint = checkpoint;
        Some(r)
    }

    /// Records of every successful run executed so far, sorted by
    /// (workload, input, system) for deterministic manifests.
    pub fn records(&self) -> Vec<RunRecord> {
        let mut records: Vec<RunRecord> = self
            .shared
            .runs
            .snapshot()
            .into_iter()
            .map(|((name, input, kind), (stats, wall_ms, checkpoint))| {
                let mut r = RunRecord::new(&name, input, kind, &stats, wall_ms);
                r.checkpoint = checkpoint;
                r
            })
            .collect();
        records.sort_by_key(RunRecord::sort_key);
        records
    }

    /// Writes the manifest of every run executed so far to
    /// `target/lab/<name>.json` (see [`Manifest::write`]).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_manifest(&self, name: &str) -> std::io::Result<PathBuf> {
        Manifest {
            name: name.to_string(),
            records: self
                .records()
                .into_iter()
                .map(RunOutcome::Success)
                .collect(),
        }
        .write()
    }
}

impl std::fmt::Debug for Lab {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Lab")
            .field("traces", &self.shared.traces.len())
            .field("runs", &self.shared.runs.len())
            .finish()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn once_map_computes_once_across_threads() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let map: OnceMap<u32, u64> = OnceMap::new();
        let calls = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for k in 0..16u32 {
                        let v = map.get_or_init(&k, || {
                            calls.fetch_add(1, Ordering::SeqCst);
                            u64::from(k) * 3
                        });
                        assert_eq!(v, u64::from(k) * 3);
                    }
                });
            }
        });
        assert_eq!(calls.load(Ordering::SeqCst), 16, "one compute per key");
        assert_eq!(map.len(), 16);
        assert_eq!(map.snapshot().len(), 16);
    }

    #[test]
    fn once_map_survives_a_panicking_initializer() {
        let map: OnceMap<u32, u64> = OnceMap::new();
        // A panicking leader used to poison the cell's lock and wedge
        // every later requester of the same key; now the cell is simply
        // left empty and the next requester retries.
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            map.get_or_init(&7, || panic!("injected"));
        }));
        assert!(r.is_err(), "the panic must propagate to the caller");
        assert_eq!(map.get(&7), None, "failed compute is not cached");
        assert_eq!(map.get_or_init(&7, || 21), 21, "retry succeeds");
        assert_eq!(map.get(&7), Some(21));
        // Unrelated keys are unaffected throughout.
        assert_eq!(map.get_or_init(&8, || 24), 24);
    }

    #[test]
    fn once_map_does_not_cache_errors() {
        let map: OnceMap<u32, u64> = OnceMap::new();
        let e = map.get_or_try_init(&1, || Err::<u64, _>("boom"));
        assert_eq!(e, Err("boom"));
        assert_eq!(map.get(&1), None);
        assert_eq!(map.get_or_try_init::<&str>(&1, || Ok(5)), Ok(5));
        assert_eq!(map.get(&1), Some(5));
    }

    #[test]
    fn lab_is_send_sync_and_clone_shares_state() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Lab>();
        let lab = Lab::new();
        let clone = lab.clone();
        assert!(Arc::ptr_eq(&lab.shared, &clone.shared));
    }
}
