//! Thread-safe caching layer for experiment composition.
//!
//! A [`Lab`] memoizes workload traces, train-input profiles, compiler
//! artifacts and single-core run results behind `Arc<OnceLock>` cells, so
//! each is computed **exactly once per process** no matter how many
//! figures request it or how many worker threads run concurrently
//! (concurrent requesters of the same cell block on the leader instead of
//! recomputing). `Lab` is `Clone + Send + Sync`; clones share the same
//! cache, which is what the parallel sweep executor in [`crate::sweep`]
//! relies on.

use std::collections::HashMap;
use std::hash::Hash;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use ecdp::profile::{profile_workload, PgProfile};
use ecdp::system::{run_system, CompilerArtifacts, SystemKind};
use sim_core::{RunStats, Trace};
use workloads::{by_name, InputSet};

use crate::manifest::{Manifest, RunRecord};

/// A concurrent compute-once map: the first requester of a key runs the
/// initializer, every other concurrent requester blocks until the value
/// is ready, and later requesters get the cached clone.
struct OnceMap<K, V> {
    inner: Mutex<HashMap<K, Arc<OnceLock<V>>>>,
}

impl<K: Eq + Hash + Clone, V: Clone> OnceMap<K, V> {
    fn new() -> Self {
        OnceMap {
            inner: Mutex::new(HashMap::new()),
        }
    }

    fn get_or_init(&self, key: &K, f: impl FnOnce() -> V) -> V {
        let cell = {
            let mut map = self.inner.lock().unwrap();
            map.entry(key.clone()).or_default().clone()
        };
        // The map lock is released here: a slow initializer only blocks
        // requesters of the *same* key, never the whole cache.
        cell.get_or_init(f).clone()
    }

    fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    /// All initialized entries (skips cells still being computed).
    fn snapshot(&self) -> Vec<(K, V)> {
        let map = self.inner.lock().unwrap();
        map.iter()
            .filter_map(|(k, cell)| cell.get().map(|v| (k.clone(), v.clone())))
            .collect()
    }
}

struct LabShared {
    traces: OnceMap<(String, InputSet), Arc<Trace>>,
    profiles: OnceMap<String, Arc<PgProfile>>,
    artifacts: OnceMap<String, Arc<CompilerArtifacts>>,
    /// Run result plus the wall-clock milliseconds of the fresh compute.
    runs: OnceMap<(String, InputSet, SystemKind), (RunStats, f64)>,
    verbose: bool,
}

/// A memoizing, thread-safe experiment context.
///
/// # Example
///
/// ```no_run
/// use bench::Lab;
/// use ecdp::system::SystemKind;
///
/// let lab = Lab::new();
/// let base = lab.run("mst", SystemKind::StreamOnly).ipc();
/// let ours = lab.run("mst", SystemKind::StreamEcdpThrottled).ipc();
/// println!("speedup: {:.2}", ours / base);
/// ```
#[derive(Clone)]
pub struct Lab {
    shared: Arc<LabShared>,
}

impl Default for Lab {
    fn default() -> Self {
        Self::new()
    }
}

impl Lab {
    /// Creates an empty lab. Set `BENCH_VERBOSE` in the environment for
    /// one progress line per fresh simulation on stderr.
    pub fn new() -> Self {
        Lab {
            shared: Arc::new(LabShared {
                traces: OnceMap::new(),
                profiles: OnceMap::new(),
                artifacts: OnceMap::new(),
                runs: OnceMap::new(),
                verbose: std::env::var_os("BENCH_VERBOSE").is_some(),
            }),
        }
    }

    /// The (cached) trace for a workload and input set; generated at most
    /// once per process.
    ///
    /// With `BENCH_TRACE_CACHE=<dir>` in the environment, traces are also
    /// cached on disk in the `sim_core::trace_io` format — useful when
    /// many per-figure binaries run as separate processes. The cache is
    /// keyed by workload name and input set only; delete the directory
    /// after changing workload generators.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a known workload.
    pub fn trace(&self, name: &str, input: InputSet) -> Arc<Trace> {
        let key = (name.to_string(), input);
        let shared = &self.shared;
        shared.traces.get_or_init(&key, || {
            let disk = std::env::var_os("BENCH_TRACE_CACHE").map(|dir| {
                let mut p = PathBuf::from(dir);
                p.push(format!("{name}-{input:?}.trc"));
                p
            });
            if let Some(path) = disk.as_ref().filter(|p| p.exists()) {
                if let Ok(f) = std::fs::File::open(path) {
                    if let Ok(t) = sim_core::trace_io::read(&mut std::io::BufReader::new(f)) {
                        if shared.verbose {
                            eprintln!("[lab] loaded {name} {input:?} from cache");
                        }
                        return Arc::new(t);
                    }
                }
            }
            let wl = by_name(name).unwrap_or_else(|| panic!("unknown workload {name}"));
            if shared.verbose {
                eprintln!("[lab] generating {name} {input:?}");
            }
            let t = wl.generate(input);
            if let Some(path) = disk {
                if let Some(parent) = path.parent() {
                    let _ = std::fs::create_dir_all(parent);
                }
                if let Ok(f) = std::fs::File::create(&path) {
                    let _ = sim_core::trace_io::write(&t, &mut std::io::BufWriter::new(f));
                }
            }
            Arc::new(t)
        })
    }

    /// The (cached) pointer-group profile from the workload's train
    /// input; profiled at most once per process.
    pub fn profile(&self, name: &str) -> Arc<PgProfile> {
        let key = name.to_string();
        self.shared.profiles.get_or_init(&key, || {
            let t = self.trace(name, InputSet::Train);
            if self.shared.verbose {
                eprintln!("[lab] profiling {name}");
            }
            Arc::new(profile_workload(&t))
        })
    }

    /// The (cached) compiler artifacts derived from the train profile.
    pub fn artifacts(&self, name: &str) -> Arc<CompilerArtifacts> {
        let key = name.to_string();
        self.shared.artifacts.get_or_init(&key, || {
            Arc::new(CompilerArtifacts::from_profile(&self.profile(name)))
        })
    }

    /// Runs (or returns the cached run of) `name`'s `input` trace on
    /// `kind`, using artifacts profiled from the train input.
    pub fn run_on(&self, name: &str, input: InputSet, kind: SystemKind) -> RunStats {
        let key = (name.to_string(), input, kind);
        self.shared
            .runs
            .get_or_init(&key, || {
                let art = self.artifacts(name);
                let t = self.trace(name, input);
                if self.shared.verbose {
                    eprintln!("[lab] running {name} {input:?} on {}", kind.label());
                }
                let t0 = Instant::now();
                let stats = run_system(kind, &t, &art);
                (stats, t0.elapsed().as_secs_f64() * 1e3)
            })
            .0
    }

    /// Runs (or returns the cached run of) `name`'s ref input on `kind`.
    pub fn run(&self, name: &str, kind: SystemKind) -> RunStats {
        self.run_on(name, InputSet::Ref, kind)
    }

    /// Speedup of `kind` over the stream-only baseline for one workload.
    pub fn speedup(&self, name: &str, kind: SystemKind) -> f64 {
        let base = self.run(name, SystemKind::StreamOnly).ipc();
        self.run(name, kind).ipc() / base
    }

    /// BPKI ratio of `kind` versus the stream-only baseline.
    pub fn bpki_ratio(&self, name: &str, kind: SystemKind) -> f64 {
        let base = self.run(name, SystemKind::StreamOnly).bpki();
        self.run(name, kind).bpki() / base.max(1e-9)
    }

    /// The [`RunRecord`] of one cached run, if it has been executed.
    pub fn record_for(&self, name: &str, input: InputSet, kind: SystemKind) -> Option<RunRecord> {
        let key = (name.to_string(), input, kind);
        let map = self.shared.runs.inner.lock().unwrap();
        let (stats, wall_ms) = map.get(&key)?.get()?.clone();
        drop(map);
        Some(RunRecord::new(name, input, kind, &stats, wall_ms))
    }

    /// Records of every run executed so far, sorted by
    /// (workload, input, system) for deterministic manifests.
    pub fn records(&self) -> Vec<RunRecord> {
        let mut records: Vec<RunRecord> = self
            .shared
            .runs
            .snapshot()
            .into_iter()
            .map(|((name, input, kind), (stats, wall_ms))| {
                RunRecord::new(&name, input, kind, &stats, wall_ms)
            })
            .collect();
        records.sort_by_key(RunRecord::sort_key);
        records
    }

    /// Writes the manifest of every run executed so far to
    /// `target/lab/<name>.json` (see [`Manifest::write`]).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_manifest(&self, name: &str) -> std::io::Result<PathBuf> {
        Manifest {
            name: name.to_string(),
            records: self.records(),
        }
        .write()
    }
}

impl std::fmt::Debug for Lab {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Lab")
            .field("traces", &self.shared.traces.len())
            .field("runs", &self.shared.runs.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn once_map_computes_once_across_threads() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let map: OnceMap<u32, u64> = OnceMap::new();
        let calls = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for k in 0..16u32 {
                        let v = map.get_or_init(&k, || {
                            calls.fetch_add(1, Ordering::SeqCst);
                            u64::from(k) * 3
                        });
                        assert_eq!(v, u64::from(k) * 3);
                    }
                });
            }
        });
        assert_eq!(calls.load(Ordering::SeqCst), 16, "one compute per key");
        assert_eq!(map.len(), 16);
        assert_eq!(map.snapshot().len(), 16);
    }

    #[test]
    fn lab_is_send_sync_and_clone_shares_state() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Lab>();
        let lab = Lab::new();
        let clone = lab.clone();
        assert!(Arc::ptr_eq(&lab.shared, &clone.shared));
    }
}
