//! Thread-safe caching layer for experiment composition.
//!
//! A [`Lab`] memoizes workload traces, train-input profiles, compiler
//! artifacts and single-core run results behind compute-once cells, so
//! each is computed **exactly once per process** no matter how many
//! figures request it or how many worker threads run concurrently
//! (concurrent requesters of the same cell block on the leader instead of
//! recomputing). `Lab` is `Clone + Send + Sync`; clones share the same
//! cache, which is what the parallel sweep executor in [`crate::sweep`]
//! relies on.
//!
//! The cache is failure-aware: a cell whose initializer returns an error
//! or panics stays *empty* (it does not cache the failure and does not
//! poison the map), so an injected or transient fault in one sweep cell
//! never wedges the remaining cells — the property the fault-tolerance
//! integration tests pin down.

use std::collections::HashMap;
use std::hash::Hash;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use ecdp::profile::{profile_workload, PgProfile};
use ecdp::system::{CompilerArtifacts, SystemBuilder, SystemKind};
use sim_core::{ObsConfig, RunStats, RunTrace, SimError, Trace};
use workloads::{by_name, InputSet};

use crate::fault::{FaultAction, FaultPlan};
use crate::manifest::{Manifest, RunOutcome, RunRecord};

/// Locks a mutex, recovering from poisoning.
///
/// Every value behind these locks is a plain cache entry that is only
/// written *after* its compute completed, so a panic on another thread
/// never leaves it half-updated — recovering the guard is always safe
/// and keeps one panicking sweep cell from wedging the whole lab.
fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A concurrent compute-once map: the first requester of a key runs the
/// initializer, every other concurrent requester blocks until the value
/// is ready, and later requesters get the cached clone.
///
/// Failed initializers (error return or panic) leave the cell empty, so
/// the next requester retries the compute instead of observing a wedged
/// or poisoned entry.
struct OnceMap<K, V> {
    inner: Mutex<HashMap<K, Arc<Mutex<Option<V>>>>>,
}

impl<K: Eq + Hash + Clone, V: Clone> OnceMap<K, V> {
    fn new() -> Self {
        OnceMap {
            inner: Mutex::new(HashMap::new()),
        }
    }

    /// Returns the cached value or runs `f` to produce it. `Err` is
    /// propagated to the caller and *not* cached; a panicking `f`
    /// likewise leaves the cell empty for the next requester.
    fn get_or_try_init<E>(&self, key: &K, f: impl FnOnce() -> Result<V, E>) -> Result<V, E> {
        let cell = {
            let mut map = lock_recover(&self.inner);
            map.entry(key.clone()).or_default().clone()
        };
        // The map lock is released here: a slow initializer only blocks
        // requesters of the *same* key, never the whole cache.
        let mut slot = lock_recover(&cell);
        if let Some(v) = slot.as_ref() {
            return Ok(v.clone());
        }
        let v = f()?;
        *slot = Some(v.clone());
        Ok(v)
    }

    fn get_or_init(&self, key: &K, f: impl FnOnce() -> V) -> V {
        self.get_or_try_init::<std::convert::Infallible>(key, || Ok(f()))
            .unwrap_or_else(|e| match e {})
    }

    /// The cached value for `key`, if its compute has completed.
    fn get(&self, key: &K) -> Option<V> {
        let cell = lock_recover(&self.inner).get(key)?.clone();
        let slot = lock_recover(&cell);
        slot.clone()
    }

    fn len(&self) -> usize {
        lock_recover(&self.inner).len()
    }

    /// All initialized entries (skips cells still being computed).
    fn snapshot(&self) -> Vec<(K, V)> {
        let map = lock_recover(&self.inner);
        map.iter()
            .filter_map(|(k, cell)| {
                let slot = cell.try_lock().ok()?;
                slot.as_ref().map(|v| (k.clone(), v.clone()))
            })
            .collect()
    }
}

struct LabShared {
    traces: OnceMap<(String, InputSet), Arc<Trace>>,
    profiles: OnceMap<String, Arc<PgProfile>>,
    artifacts: OnceMap<String, Arc<CompilerArtifacts>>,
    /// Run result plus the wall-clock milliseconds of the fresh compute.
    runs: OnceMap<(String, InputSet, SystemKind), (RunStats, f64)>,
    /// Observability traces of runs executed with [`Lab::try_run_traced`].
    traces_obs: OnceMap<(String, InputSet, SystemKind), Arc<RunTrace>>,
    faults: FaultPlan,
    verbose: bool,
}

/// A memoizing, thread-safe experiment context.
///
/// # Example
///
/// ```no_run
/// use bench::Lab;
/// use ecdp::system::SystemKind;
///
/// let lab = Lab::new();
/// let base = lab.run("mst", SystemKind::StreamOnly).ipc();
/// let ours = lab.run("mst", SystemKind::StreamEcdpThrottled).ipc();
/// println!("speedup: {:.2}", ours / base);
/// ```
#[derive(Clone)]
pub struct Lab {
    shared: Arc<LabShared>,
}

impl Default for Lab {
    fn default() -> Self {
        Self::new()
    }
}

impl Lab {
    /// Creates an empty lab. Set `BENCH_VERBOSE` in the environment for
    /// one progress line per fresh simulation on stderr; set
    /// `BENCH_FAULT_PLAN` (see [`FaultPlan`]) to inject failures into
    /// matching cells.
    pub fn new() -> Self {
        Self::with_faults(FaultPlan::from_env())
    }

    /// Creates an empty lab with an explicit fault-injection plan
    /// (tests use this instead of mutating the process environment).
    pub fn with_faults(faults: FaultPlan) -> Self {
        Lab {
            shared: Arc::new(LabShared {
                traces: OnceMap::new(),
                profiles: OnceMap::new(),
                artifacts: OnceMap::new(),
                runs: OnceMap::new(),
                traces_obs: OnceMap::new(),
                faults,
                verbose: std::env::var_os("BENCH_VERBOSE").is_some(),
            }),
        }
    }

    /// The (cached) trace for a workload and input set; generated at most
    /// once per process.
    ///
    /// With `BENCH_TRACE_CACHE=<dir>` in the environment, traces are also
    /// cached on disk in the `sim_core::trace_io` format — useful when
    /// many per-figure binaries run as separate processes. The cache is
    /// keyed by workload name and input set only; delete the directory
    /// after changing workload generators.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a known workload.
    pub fn trace(&self, name: &str, input: InputSet) -> Arc<Trace> {
        let key = (name.to_string(), input);
        let shared = &self.shared;
        shared.traces.get_or_init(&key, || {
            let disk = std::env::var_os("BENCH_TRACE_CACHE").map(|dir| {
                let mut p = PathBuf::from(dir);
                p.push(format!("{name}-{input:?}.trc"));
                p
            });
            if let Some(path) = disk.as_ref().filter(|p| p.exists()) {
                if let Ok(f) = std::fs::File::open(path) {
                    if let Ok(t) = sim_core::trace_io::read(&mut std::io::BufReader::new(f)) {
                        if shared.verbose {
                            eprintln!("[lab] loaded {name} {input:?} from cache");
                        }
                        return Arc::new(t);
                    }
                }
            }
            let wl = by_name(name).unwrap_or_else(|| panic!("unknown workload {name}"));
            if shared.verbose {
                eprintln!("[lab] generating {name} {input:?}");
            }
            let t = wl.generate(input);
            if let Some(path) = disk {
                if let Some(parent) = path.parent() {
                    let _ = std::fs::create_dir_all(parent);
                }
                if let Ok(f) = std::fs::File::create(&path) {
                    let _ = sim_core::trace_io::write(&t, &mut std::io::BufWriter::new(f));
                }
            }
            Arc::new(t)
        })
    }

    /// The (cached) pointer-group profile from the workload's train
    /// input; profiled at most once per process.
    pub fn profile(&self, name: &str) -> Arc<PgProfile> {
        let key = name.to_string();
        self.shared.profiles.get_or_init(&key, || {
            let t = self.trace(name, InputSet::Train);
            if self.shared.verbose {
                eprintln!("[lab] profiling {name}");
            }
            Arc::new(profile_workload(&t))
        })
    }

    /// The (cached) compiler artifacts derived from the train profile.
    pub fn artifacts(&self, name: &str) -> Arc<CompilerArtifacts> {
        let key = name.to_string();
        self.shared.artifacts.get_or_init(&key, || {
            Arc::new(CompilerArtifacts::from_profile(&self.profile(name)))
        })
    }

    /// Runs (or returns the cached run of) `name`'s `input` trace on
    /// `kind`, using artifacts profiled from the train input.
    ///
    /// Failed runs are not cached: a later request for the same cell
    /// retries the simulation.
    ///
    /// # Errors
    ///
    /// Propagates the [`SimError`] of a wedged or injected-fault run.
    pub fn try_run_on(
        &self,
        name: &str,
        input: InputSet,
        kind: SystemKind,
    ) -> Result<RunStats, SimError> {
        self.try_run_inner(name, input, kind, None)
            .map(|(stats, _)| stats)
    }

    /// Like [`Lab::try_run_on`], but with the observability layer
    /// (interval time series + throttle decision trace) enabled; returns
    /// the statistics together with the recorded [`RunTrace`].
    ///
    /// The statistics are bit-identical to an untraced run (the
    /// disabled-observer fast path is the default; enabling it only adds
    /// bookkeeping outside the simulated machine), so the run *also*
    /// seeds the plain stats cache: a later [`Lab::try_run_on`] of the
    /// same cell is a cache hit.
    ///
    /// # Errors
    ///
    /// Propagates the [`SimError`] of a wedged or injected-fault run.
    pub fn try_run_traced(
        &self,
        name: &str,
        input: InputSet,
        kind: SystemKind,
    ) -> Result<(RunStats, Arc<RunTrace>), SimError> {
        let key = (name.to_string(), input, kind);
        let obs = ObsConfig::enabled();
        let (stats, trace) = self.try_run_inner(name, input, kind, Some(obs))?;
        Ok((
            stats,
            trace.unwrap_or_else(|| {
                // The cell was already simulated untraced: rerun outside
                // the stats cache to collect the trace, once.
                self.shared.traces_obs.get_or_init(&key, || {
                    let art = self.artifacts(name);
                    let t = self.trace(name, input);
                    if self.shared.verbose {
                        eprintln!(
                            "[lab] re-running {name} {input:?} on {} for its trace",
                            kind.label()
                        );
                    }
                    let run = SystemBuilder::new(kind)
                        .artifacts(&art)
                        .observe(obs)
                        .run(&t);
                    Arc::new(run.ok().and_then(|r| r.trace).unwrap_or_default())
                })
            }),
        ))
    }

    fn try_run_inner(
        &self,
        name: &str,
        input: InputSet,
        kind: SystemKind,
        obs: Option<ObsConfig>,
    ) -> Result<(RunStats, Option<Arc<RunTrace>>), SimError> {
        let key = (name.to_string(), input, kind);
        let (stats, _) = self.shared.runs.get_or_try_init(&key, || {
            match self.shared.faults.action_for(name, input, kind) {
                Some(FaultAction::Panic) => {
                    panic!("injected fault: panic in {name} {input:?} {}", kind.label())
                }
                Some(FaultAction::Livelock) => return Err(crate::fault::run_livelock()),
                Some(FaultAction::Slow(ms)) => {
                    std::thread::sleep(std::time::Duration::from_millis(ms));
                }
                None => {}
            }
            let art = self.artifacts(name);
            let t = self.trace(name, input);
            if self.shared.verbose {
                eprintln!("[lab] running {name} {input:?} on {}", kind.label());
            }
            let t0 = Instant::now();
            let mut builder = SystemBuilder::new(kind).artifacts(&art);
            if let Some(cfg) = obs {
                builder = builder.observe(cfg);
            }
            let run = builder.run(&t)?;
            if let Some(trace) = run.trace {
                self.shared.traces_obs.get_or_init(&key, || Arc::new(trace));
            }
            Ok((run.stats, t0.elapsed().as_secs_f64() * 1e3))
        })?;
        Ok((stats, self.shared.traces_obs.get(&key)))
    }

    /// Like [`Lab::try_run_on`], for callers that treat a failed
    /// simulation as fatal.
    ///
    /// # Panics
    ///
    /// Panics with the [`SimError`] message when the run fails.
    pub fn run_on(&self, name: &str, input: InputSet, kind: SystemKind) -> RunStats {
        self.try_run_on(name, input, kind).unwrap_or_else(|e| {
            panic!(
                "simulation of {name} {input:?} on {} failed: {e}",
                kind.label()
            )
        })
    }

    /// Runs (or returns the cached run of) `name`'s ref input on `kind`.
    pub fn run(&self, name: &str, kind: SystemKind) -> RunStats {
        self.run_on(name, InputSet::Ref, kind)
    }

    /// Speedup of `kind` over the stream-only baseline for one workload.
    pub fn speedup(&self, name: &str, kind: SystemKind) -> f64 {
        let base = self.run(name, SystemKind::StreamOnly).ipc();
        self.run(name, kind).ipc() / base
    }

    /// BPKI ratio of `kind` versus the stream-only baseline.
    pub fn bpki_ratio(&self, name: &str, kind: SystemKind) -> f64 {
        let base = self.run(name, SystemKind::StreamOnly).bpki();
        self.run(name, kind).bpki() / base.max(1e-9)
    }

    /// The [`RunRecord`] of one cached run, if it has been executed.
    pub fn record_for(&self, name: &str, input: InputSet, kind: SystemKind) -> Option<RunRecord> {
        let key = (name.to_string(), input, kind);
        let (stats, wall_ms) = self.shared.runs.get(&key)?;
        Some(RunRecord::new(name, input, kind, &stats, wall_ms))
    }

    /// Records of every successful run executed so far, sorted by
    /// (workload, input, system) for deterministic manifests.
    pub fn records(&self) -> Vec<RunRecord> {
        let mut records: Vec<RunRecord> = self
            .shared
            .runs
            .snapshot()
            .into_iter()
            .map(|((name, input, kind), (stats, wall_ms))| {
                RunRecord::new(&name, input, kind, &stats, wall_ms)
            })
            .collect();
        records.sort_by_key(RunRecord::sort_key);
        records
    }

    /// Writes the manifest of every run executed so far to
    /// `target/lab/<name>.json` (see [`Manifest::write`]).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_manifest(&self, name: &str) -> std::io::Result<PathBuf> {
        Manifest {
            name: name.to_string(),
            records: self
                .records()
                .into_iter()
                .map(RunOutcome::Success)
                .collect(),
        }
        .write()
    }
}

impl std::fmt::Debug for Lab {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Lab")
            .field("traces", &self.shared.traces.len())
            .field("runs", &self.shared.runs.len())
            .finish()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn once_map_computes_once_across_threads() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let map: OnceMap<u32, u64> = OnceMap::new();
        let calls = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for k in 0..16u32 {
                        let v = map.get_or_init(&k, || {
                            calls.fetch_add(1, Ordering::SeqCst);
                            u64::from(k) * 3
                        });
                        assert_eq!(v, u64::from(k) * 3);
                    }
                });
            }
        });
        assert_eq!(calls.load(Ordering::SeqCst), 16, "one compute per key");
        assert_eq!(map.len(), 16);
        assert_eq!(map.snapshot().len(), 16);
    }

    #[test]
    fn once_map_survives_a_panicking_initializer() {
        let map: OnceMap<u32, u64> = OnceMap::new();
        // A panicking leader used to poison the cell's lock and wedge
        // every later requester of the same key; now the cell is simply
        // left empty and the next requester retries.
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            map.get_or_init(&7, || panic!("injected"));
        }));
        assert!(r.is_err(), "the panic must propagate to the caller");
        assert_eq!(map.get(&7), None, "failed compute is not cached");
        assert_eq!(map.get_or_init(&7, || 21), 21, "retry succeeds");
        assert_eq!(map.get(&7), Some(21));
        // Unrelated keys are unaffected throughout.
        assert_eq!(map.get_or_init(&8, || 24), 24);
    }

    #[test]
    fn once_map_does_not_cache_errors() {
        let map: OnceMap<u32, u64> = OnceMap::new();
        let e = map.get_or_try_init(&1, || Err::<u64, _>("boom"));
        assert_eq!(e, Err("boom"));
        assert_eq!(map.get(&1), None);
        assert_eq!(map.get_or_try_init::<&str>(&1, || Ok(5)), Ok(5));
        assert_eq!(map.get(&1), Some(5));
    }

    #[test]
    fn lab_is_send_sync_and_clone_shares_state() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Lab>();
        let lab = Lab::new();
        let clone = lab.clone();
        assert!(Arc::ptr_eq(&lab.shared, &clone.shared));
    }
}
