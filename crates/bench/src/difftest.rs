//! Differential snapshot harness: the proof that warm-state fork is
//! bit-identical to cold simulation.
//!
//! For a randomized population of (workload, config, system) triples,
//! [`run_case`] executes the full differential protocol on each:
//!
//! 1. **Cold** — plain run with the observability layer on (interval
//!    time series + Table 3 decision trace).
//! 2. **Capture** — same run with [`SystemBuilder::warm_checkpoint`];
//!    results must equal the cold run exactly, proving the capture is
//!    read-only.
//! 3. **Fork** — a fresh machine restored from the in-memory
//!    [`Snapshot`] resumes at the checkpoint cycle; its end-of-run
//!    statistics, serialized time series and throttle transitions must
//!    be byte-identical to the cold run.
//! 4. **Wire round-trip** — the snapshot is framed with
//!    [`Snapshot::to_bytes`], parsed back with
//!    [`Snapshot::from_bytes`], and forked again; results must again
//!    be byte-identical, proving the wire format is lossless.
//!
//! Mismatches come back as structured [`DiffFailure`]s naming the stage
//! and the first field that diverged, so a CI failure pinpoints the
//! component whose state the snapshot missed. The module is consumed by
//! the `snapshot_difftest` integration test and by the CI
//! `snapshot-difftest` job.

use ecdp::system::{SystemBuilder, SystemKind, SystemRun};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sim_core::{MachineConfig, ObsConfig, Snapshot};
use workloads::InputSet;

use crate::lab::Lab;

/// Workloads the randomized population draws from: pointer-chasing
/// (`mst`, `health`, `perimeter`) and streaming (`libquantum`) cover
/// every prefetcher family the snapshot serializes.
pub const DIFF_WORKLOADS: [&str; 4] = ["mst", "health", "perimeter", "libquantum"];

/// Systems the randomized population draws from — chosen to exercise
/// every kind of serialized state: stream tables alone, CDP depth
/// state, the full proposal with coordinated throttling, and the
/// hybrid GHB path.
pub const DIFF_SYSTEMS: [SystemKind; 5] = [
    SystemKind::StreamOnly,
    SystemKind::StreamCdp,
    SystemKind::StreamEcdp,
    SystemKind::StreamCdpThrottled,
    SystemKind::StreamEcdpThrottled,
];

/// One randomized differential case: a (workload, config, system)
/// triple plus the fraction of the cold run at which to checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffCase {
    /// Workload name (see [`DIFF_WORKLOADS`]).
    pub workload: String,
    /// Input set (always `Test` for the randomized population; the
    /// protocol is input-agnostic).
    pub input: InputSet,
    /// System variant under test.
    pub system: SystemKind,
    /// L2 capacity in bytes (randomized so eviction/pollution state
    /// differs across cases).
    pub l2_bytes: u32,
    /// Throttle sampling-interval length in L2 evictions.
    pub interval_evictions: u64,
    /// Checkpoint position in tenths of the cold run's cycle count
    /// (1..=8, so the fork always has work left to do).
    pub checkpoint_tenths: u64,
}

impl DiffCase {
    /// The machine configuration this case runs under.
    pub fn config(&self) -> MachineConfig {
        let mut cfg = MachineConfig::default();
        cfg.l2.bytes = self.l2_bytes;
        cfg.interval_evictions = self.interval_evictions;
        cfg
    }

    /// Compact human-readable label for logs and failure messages.
    pub fn label(&self) -> String {
        format!(
            "{}:{:?}:{} l2={}K interval={} ckpt={}/10",
            self.workload,
            self.input,
            self.system.label(),
            self.l2_bytes / 1024,
            self.interval_evictions,
            self.checkpoint_tenths
        )
    }
}

/// Draws `n` randomized cases from a deterministic generator, so a CI
/// failure reproduces locally from the same seed.
pub fn random_cases(seed: u64, n: usize) -> Vec<DiffCase> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let workload = DIFF_WORKLOADS[rng.gen_range(0..DIFF_WORKLOADS.len())].to_string();
            let system = DIFF_SYSTEMS[rng.gen_range(0..DIFF_SYSTEMS.len())];
            DiffCase {
                workload,
                input: InputSet::Test,
                system,
                // 16 KB..256 KB in power-of-two steps.
                l2_bytes: 1024u32 << rng.gen_range(4..=8u32),
                interval_evictions: rng.gen_range(32..=512u64),
                checkpoint_tenths: rng.gen_range(1..=8u64),
            }
        })
        .collect()
}

/// Where in the differential protocol a mismatch was detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiffStage {
    /// The checkpointing run diverged from the cold run: capture
    /// perturbed the simulation.
    Capture,
    /// The run forked from the in-memory snapshot diverged.
    Fork,
    /// The run forked from the wire round-tripped snapshot diverged.
    WireFork,
}

impl std::fmt::Display for DiffStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiffStage::Capture => write!(f, "capture"),
            DiffStage::Fork => write!(f, "fork"),
            DiffStage::WireFork => write!(f, "wire-fork"),
        }
    }
}

/// A differential failure: which case, which protocol stage, and what
/// diverged first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffFailure {
    /// The case that failed.
    pub case: DiffCase,
    /// The protocol stage that detected the mismatch (or, for setup
    /// failures, the stage that could not run).
    pub stage: DiffStage,
    /// Human-readable description of the first divergence.
    pub detail: String,
}

impl std::fmt::Display for DiffFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] {} stage: {}",
            self.case.label(),
            self.stage,
            self.detail
        )
    }
}

/// A passed case, with the numbers a log line wants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffOutcome {
    /// The case that passed.
    pub case: DiffCase,
    /// Cold run length in cycles.
    pub cold_cycles: u64,
    /// Cycle at which the snapshot was captured.
    pub checkpoint_cycle: u64,
    /// Size of the framed snapshot on the wire.
    pub snapshot_bytes: usize,
}

/// Compares two runs field by field, returning the first divergence.
///
/// "Byte-identical" is taken literally: statistics must compare equal
/// *and* the serialized forms (the interval time series JSON text and
/// the Table 3 transition list) must match as strings, so a float that
/// survives `==` but prints differently still fails.
pub fn compare_runs(cold: &SystemRun, other: &SystemRun) -> Result<(), String> {
    if cold.stats != other.stats {
        return Err(format!(
            "RunStats diverged: cold cycles={} ipc={:.9} bpki={:.9}, got cycles={} ipc={:.9} bpki={:.9}",
            cold.stats.cycles,
            cold.stats.ipc(),
            cold.stats.bpki(),
            other.stats.cycles,
            other.stats.ipc(),
            other.stats.bpki()
        ));
    }
    let (Some(ct), Some(ot)) = (&cold.trace, &other.trace) else {
        return Err(format!(
            "observability trace missing: cold={} other={}",
            cold.trace.is_some(),
            other.trace.is_some()
        ));
    };
    let cold_ts = ct.timeseries_json().to_string_pretty();
    let other_ts = ot.timeseries_json().to_string_pretty();
    if cold_ts != other_ts {
        let at = cold_ts
            .bytes()
            .zip(other_ts.bytes())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| cold_ts.len().min(other_ts.len()));
        return Err(format!(
            "interval time series diverged at byte {at} (cold {} bytes, got {} bytes)",
            cold_ts.len(),
            other_ts.len()
        ));
    }
    if ct.transitions != ot.transitions {
        let at = ct
            .transitions
            .iter()
            .zip(&ot.transitions)
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| ct.transitions.len().min(ot.transitions.len()));
        return Err(format!(
            "Table 3 decision trace diverged at transition {at} (cold {}, got {})",
            ct.transitions.len(),
            ot.transitions.len()
        ));
    }
    Ok(())
}

/// Runs the full differential protocol for one case.
///
/// # Errors
///
/// Returns the first [`DiffFailure`]: a stage whose results diverged
/// from the cold run, or a stage that failed to execute at all.
pub fn run_case(lab: &Lab, case: &DiffCase) -> Result<DiffOutcome, DiffFailure> {
    let art = lab.artifacts(&case.workload);
    let trace = lab.trace(&case.workload, case.input);
    let cfg = case.config();
    let obs = ObsConfig {
        timeseries: true,
        decisions: true,
        ..ObsConfig::default()
    };
    let build = || {
        SystemBuilder::new(case.system)
            .artifacts(&art)
            .config(cfg.clone())
            .observe(obs)
    };
    let fail = |stage: DiffStage, detail: String| DiffFailure {
        case: case.clone(),
        stage,
        detail,
    };

    let cold = build()
        .run(&trace)
        .map_err(|e| fail(DiffStage::Capture, format!("cold run failed: {e}")))?;

    // Stage 2: checkpoint capture must be read-only.
    let checkpoint = (cold.stats.cycles * case.checkpoint_tenths / 10).max(1);
    let warm = build()
        .warm_checkpoint(checkpoint)
        .run(&trace)
        .map_err(|e| fail(DiffStage::Capture, format!("checkpointing run failed: {e}")))?;
    compare_runs(&cold, &warm).map_err(|d| fail(DiffStage::Capture, d))?;
    let snapshot = warm.snapshot.ok_or_else(|| {
        fail(
            DiffStage::Capture,
            format!(
                "no snapshot captured at cycle {checkpoint} of {}",
                cold.stats.cycles
            ),
        )
    })?;

    // Stage 3: fork from the in-memory snapshot.
    let forked = build()
        .fork_from(&snapshot)
        .run(&trace)
        .map_err(|e| fail(DiffStage::Fork, format!("forked run failed: {e}")))?;
    compare_runs(&cold, &forked).map_err(|d| fail(DiffStage::Fork, d))?;

    // Stage 4: fork from the wire round-trip.
    let bytes = snapshot.to_bytes();
    let restored = Snapshot::from_bytes(&bytes)
        .map_err(|e| fail(DiffStage::WireFork, format!("round-trip parse failed: {e}")))?;
    let reforked = build()
        .fork_from(&restored)
        .run(&trace)
        .map_err(|e| fail(DiffStage::WireFork, format!("wire-forked run failed: {e}")))?;
    compare_runs(&cold, &reforked).map_err(|d| fail(DiffStage::WireFork, d))?;

    Ok(DiffOutcome {
        case: case.clone(),
        cold_cycles: cold.stats.cycles,
        checkpoint_cycle: snapshot.cycle(),
        snapshot_bytes: bytes.len(),
    })
}

/// Runs every case, collecting all failures instead of stopping at the
/// first, so one CI run reports the full damage.
///
/// # Errors
///
/// Returns every [`DiffFailure`] across the population.
pub fn run_suite(lab: &Lab, cases: &[DiffCase]) -> Result<Vec<DiffOutcome>, Vec<DiffFailure>> {
    let mut outcomes = Vec::new();
    let mut failures = Vec::new();
    for case in cases {
        match run_case(lab, case) {
            Ok(o) => outcomes.push(o),
            Err(f) => failures.push(f),
        }
    }
    if failures.is_empty() {
        Ok(outcomes)
    } else {
        Err(failures)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn random_cases_are_deterministic_per_seed() {
        let a = random_cases(42, 8);
        let b = random_cases(42, 8);
        assert_eq!(a, b, "same seed, same population");
        let c = random_cases(43, 8);
        assert_ne!(a, c, "different seed, different population");
        for case in &a {
            assert!(DIFF_WORKLOADS.contains(&case.workload.as_str()));
            assert!(DIFF_SYSTEMS.contains(&case.system));
            assert!((16 * 1024..=256 * 1024).contains(&case.l2_bytes));
            assert!((32..=512).contains(&case.interval_evictions));
            assert!((1..=8).contains(&case.checkpoint_tenths));
        }
    }

    #[test]
    fn compare_runs_reports_stats_divergence() {
        let cold = SystemRun::default();
        let mut other = SystemRun::default();
        other.stats.cycles = 7;
        let err = compare_runs(&cold, &other).unwrap_err();
        assert!(err.contains("RunStats diverged"), "{err}");
    }

    #[test]
    fn compare_runs_requires_the_observability_trace() {
        let cold = SystemRun::default();
        let err = compare_runs(&cold, &cold.clone()).unwrap_err();
        assert!(err.contains("trace missing"), "{err}");
    }
}
