//! The engine hot-path throughput benchmark behind `run_all --bench`.
//!
//! Runs a (workload × system) grid through [`SystemBuilder`] with empty
//! compiler artifacts — no profiling pass, no lab cache — so the wall
//! time measures the timing engine itself. The result is a
//! [`HotpathReport`] serialized to `BENCH_hotpath.json`:
//!
//! - `cells_per_sec` — simulated grid cells completed per wall second,
//!   the headline regression-gated figure;
//! - `cycles_per_sec` — simulated machine cycles per wall second, the
//!   engine-throughput view that is robust to grid composition;
//! - `peak_rss_bytes` — `VmHWM` from `/proc/self/status`, guarding the
//!   allocation-free steady state against regressions.
//!
//! [`HotpathReport::regression_check`] compares a fresh report against a
//! checked-in baseline and fails on a >20 % `cells_per_sec` drop; the CI
//! `bench-smoke` job wires it to the `BENCH_BASELINE` environment
//! variable.

use std::time::Instant;

use ecdp::system::{CompilerArtifacts, SystemBuilder, SystemKind};
use sim_core::Json;
use workloads::InputSet;

/// One timed (workload × system) cell.
#[derive(Debug, Clone, PartialEq)]
pub struct HotpathCell {
    /// Workload name (`registry::lookup` key).
    pub workload: String,
    /// System label ([`SystemKind::label`]).
    pub system: String,
    /// Simulated cycles of the run.
    pub cycles: u64,
    /// Retired instructions of the run.
    pub retired: u64,
    /// Wall-clock milliseconds for the simulation (trace generation
    /// excluded).
    pub wall_ms: f64,
}

/// The full benchmark result written to `BENCH_hotpath.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct HotpathReport {
    /// Input set the grid ran on.
    pub input: String,
    /// True if the grid ran with the cycle-by-cycle reference stepper
    /// (`--no-skip`) instead of the event-skipping engine.
    pub no_skip: bool,
    /// True if each cell's timing covers only the portion *after* a warm
    /// checkpoint (`--warm-fork`): the cell is checkpointed at 70 % of
    /// its cold cycle count and only the forked tail is timed. This is
    /// the sweep-row view — what a `SweepPlan` pays per variant when
    /// checkpoints are already on disk.
    pub warm_fork: bool,
    /// Per-cell timings.
    pub cells: Vec<HotpathCell>,
    /// Total simulation wall seconds (sum over cells).
    pub wall_seconds: f64,
    /// Total simulated cycles (sum over cells).
    pub total_cycles: u64,
    /// Cells completed per wall second.
    pub cells_per_sec: f64,
    /// Simulated cycles per wall second.
    pub cycles_per_sec: f64,
    /// Peak resident set size of the process, if the platform exposes it.
    pub peak_rss_bytes: Option<u64>,
}

impl HotpathReport {
    /// Serializes the report (deterministic field order).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema_version", Json::Num(1.0)),
            ("input", Json::Str(self.input.clone())),
            ("no_skip", Json::Bool(self.no_skip)),
            ("warm_fork", Json::Bool(self.warm_fork)),
            (
                "cells",
                Json::Arr(
                    self.cells
                        .iter()
                        .map(|c| {
                            Json::obj([
                                ("workload", Json::Str(c.workload.clone())),
                                ("system", Json::Str(c.system.clone())),
                                ("cycles", Json::Num(c.cycles as f64)),
                                ("retired", Json::Num(c.retired as f64)),
                                ("wall_ms", Json::Num(c.wall_ms)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("wall_seconds", Json::Num(self.wall_seconds)),
            ("total_cycles", Json::Num(self.total_cycles as f64)),
            ("cells_per_sec", Json::Num(self.cells_per_sec)),
            ("cycles_per_sec", Json::Num(self.cycles_per_sec)),
            (
                "peak_rss_bytes",
                self.peak_rss_bytes
                    .map_or(Json::Null, |b| Json::Num(b as f64)),
            ),
        ])
    }

    /// Parses a report produced by [`HotpathReport::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or mistyped field.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        let str_field = |v: &Json, k: &str| -> Result<String, String> {
            v.get(k)
                .and_then(Json::as_str)
                .map(ToString::to_string)
                .ok_or_else(|| format!("missing string field {k:?}"))
        };
        let num_field = |v: &Json, k: &str| -> Result<f64, String> {
            v.get(k)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("missing numeric field {k:?}"))
        };
        let int_field = |v: &Json, k: &str| -> Result<u64, String> {
            v.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing integer field {k:?}"))
        };
        let cells = v
            .get("cells")
            .and_then(Json::as_arr)
            .ok_or("missing array field \"cells\"")?
            .iter()
            .map(|c| {
                Ok(HotpathCell {
                    workload: str_field(c, "workload")?,
                    system: str_field(c, "system")?,
                    cycles: int_field(c, "cycles")?,
                    retired: int_field(c, "retired")?,
                    wall_ms: num_field(c, "wall_ms")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(HotpathReport {
            input: str_field(v, "input")?,
            no_skip: matches!(v.get("no_skip"), Some(Json::Bool(true))),
            // Absent in pre-warm-fork baselines: default false.
            warm_fork: matches!(v.get("warm_fork"), Some(Json::Bool(true))),
            cells,
            wall_seconds: num_field(v, "wall_seconds")?,
            total_cycles: int_field(v, "total_cycles")?,
            cells_per_sec: num_field(v, "cells_per_sec")?,
            cycles_per_sec: num_field(v, "cycles_per_sec")?,
            peak_rss_bytes: v.get("peak_rss_bytes").and_then(Json::as_u64),
        })
    }

    /// Fails when this report's `cells_per_sec` dropped more than
    /// `tolerance` (e.g. `0.2` = 20 %) below `baseline`'s — the CI
    /// regression gate.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the regression.
    pub fn regression_check(&self, baseline: &HotpathReport, tolerance: f64) -> Result<(), String> {
        let floor = baseline.cells_per_sec * (1.0 - tolerance);
        if self.cells_per_sec < floor {
            return Err(format!(
                "hot-path regression: {:.2} cells/sec is below {:.2} \
                 ({:.0}% of the baseline {:.2})",
                self.cells_per_sec,
                floor,
                (1.0 - tolerance) * 100.0,
                baseline.cells_per_sec,
            ));
        }
        Ok(())
    }
}

/// Peak resident set size (`VmHWM`) in bytes, on platforms with
/// `/proc/self/status`.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Runs the benchmark grid and assembles the report.
///
/// Traces are generated (and dropped from the timing) up front; every
/// cell then runs once through [`SystemBuilder`] with empty artifacts.
///
/// With `warm_fork`, each cell is first run cold *untimed* to learn its
/// length and capture a warm snapshot at 70 % of it; the timed portion
/// is only the run forked from that snapshot. The forked run's cycle
/// count is asserted identical to the cold run's, so a snapshot bug
/// shows up as a loud failure, not a silently faster benchmark.
///
/// # Panics
///
/// Panics on an unknown workload name or a failing simulation — the
/// benchmark grid is expected to be a known-good configuration.
pub fn run_hotpath_bench(
    workloads: &[String],
    input: InputSet,
    systems: &[SystemKind],
    no_skip: bool,
    warm_fork: bool,
) -> HotpathReport {
    let artifacts = CompilerArtifacts::empty();
    let traces: Vec<_> = workloads
        .iter()
        .map(|w| {
            let wl =
                workloads::registry::lookup(w).unwrap_or_else(|| panic!("unknown workload {w:?}"));
            assert!(
                !wl.is_streamed(),
                "hot-path benchmarking needs a resident trace; {w:?} is a streamed external trace"
            );
            (w.clone(), wl.generate(input))
        })
        .collect();
    let mut cells = Vec::with_capacity(traces.len() * systems.len());
    for (name, trace) in &traces {
        for &system in systems {
            let build = || {
                SystemBuilder::new(system)
                    .artifacts(&artifacts)
                    .reference_stepping(no_skip)
            };
            let die = |e: sim_core::SimError| -> ! {
                panic!("bench cell {name}/{}: {e}", system.label())
            };
            let (run, wall_ms) = if warm_fork {
                // Untimed: learn the cell's length, then capture a warm
                // snapshot at 70 % of it.
                let cold = build().run(trace).unwrap_or_else(|e| die(e));
                let checkpoint = (cold.stats.cycles * 7 / 10).max(1);
                let warm = build()
                    .warm_checkpoint(checkpoint)
                    .run(trace)
                    .unwrap_or_else(|e| die(e));
                let snapshot = warm.snapshot.unwrap_or_else(|| {
                    panic!(
                        "bench cell {name}/{}: no snapshot at cycle {checkpoint}",
                        system.label()
                    )
                });
                // Timed: only the forked tail.
                let t = Instant::now();
                let run = build()
                    .fork_from(&snapshot)
                    .run(trace)
                    .unwrap_or_else(|e| die(e));
                let wall_ms = t.elapsed().as_secs_f64() * 1e3;
                assert_eq!(
                    run.stats,
                    cold.stats,
                    "warm-forked bench cell {name}/{} diverged from its cold run",
                    system.label()
                );
                (run, wall_ms)
            } else {
                let t = Instant::now();
                let run = build().run(trace).unwrap_or_else(|e| die(e));
                (run, t.elapsed().as_secs_f64() * 1e3)
            };
            cells.push(HotpathCell {
                workload: name.clone(),
                system: system.label().to_string(),
                cycles: run.stats.cycles,
                retired: run.stats.retired_instructions,
                wall_ms,
            });
        }
    }
    let wall_seconds: f64 = cells.iter().map(|c| c.wall_ms / 1e3).sum();
    let total_cycles: u64 = cells.iter().map(|c| c.cycles).sum();
    let denom = wall_seconds.max(1e-9);
    HotpathReport {
        input: format!("{input:?}").to_lowercase(),
        no_skip,
        warm_fork,
        cells_per_sec: cells.len() as f64 / denom,
        cycles_per_sec: total_cycles as f64 / denom,
        peak_rss_bytes: peak_rss_bytes(),
        cells,
        wall_seconds,
        total_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> HotpathReport {
        HotpathReport {
            input: "test".to_string(),
            no_skip: false,
            warm_fork: false,
            cells: vec![HotpathCell {
                workload: "mst".to_string(),
                system: "stream".to_string(),
                cycles: 123_456,
                retired: 65_432,
                wall_ms: 12.5,
            }],
            wall_seconds: 0.0125,
            total_cycles: 123_456,
            cells_per_sec: 80.0,
            cycles_per_sec: 9_876_480.0,
            peak_rss_bytes: Some(64 * 1024 * 1024),
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let r = sample_report();
        let text = r.to_json().to_string_pretty();
        let back = HotpathReport::from_json(&Json::parse(&text).expect("parse")).expect("decode");
        assert_eq!(r, back);
    }

    #[test]
    fn missing_rss_round_trips_as_null() {
        let mut r = sample_report();
        r.peak_rss_bytes = None;
        let text = r.to_json().to_string_pretty();
        let back = HotpathReport::from_json(&Json::parse(&text).expect("parse")).expect("decode");
        assert_eq!(back.peak_rss_bytes, None);
    }

    #[test]
    fn regression_gate_uses_the_tolerance() {
        let base = sample_report();
        let mut fresh = sample_report();
        fresh.cells_per_sec = base.cells_per_sec * 0.81;
        assert!(fresh.regression_check(&base, 0.2).is_ok());
        fresh.cells_per_sec = base.cells_per_sec * 0.79;
        let err = fresh.regression_check(&base, 0.2).expect_err("regressed");
        assert!(err.contains("regression"), "{err}");
    }

    #[test]
    fn tiny_grid_produces_consistent_totals() {
        let r = run_hotpath_bench(
            &["libquantum".to_string()],
            InputSet::Test,
            &[SystemKind::NoPrefetch, SystemKind::StreamOnly],
            false,
            false,
        );
        assert_eq!(r.cells.len(), 2);
        assert_eq!(
            r.total_cycles,
            r.cells.iter().map(|c| c.cycles).sum::<u64>()
        );
        assert!(r.cells_per_sec > 0.0);
        assert!(r.cycles_per_sec > 0.0);
        assert_eq!(r.input, "test");
        assert!(!r.warm_fork);
    }

    #[test]
    fn warm_fork_grid_reports_the_same_cycles() {
        let grid = ["libquantum".to_string()];
        let systems = [SystemKind::StreamOnly, SystemKind::StreamEcdpThrottled];
        let cold = run_hotpath_bench(&grid, InputSet::Test, &systems, false, false);
        let forked = run_hotpath_bench(&grid, InputSet::Test, &systems, false, true);
        assert!(forked.warm_fork);
        // The forked grid simulates the same cells to the same cycle
        // counts — only the timed portion shrinks.
        assert_eq!(cold.total_cycles, forked.total_cycles);
        for (c, f) in cold.cells.iter().zip(&forked.cells) {
            assert_eq!(c.cycles, f.cycles, "{}/{}", c.workload, c.system);
            assert_eq!(c.retired, f.retired, "{}/{}", c.workload, c.system);
        }
    }

    #[test]
    fn warm_fork_flag_round_trips_and_defaults_false() {
        let mut r = sample_report();
        r.warm_fork = true;
        let text = r.to_json().to_string_pretty();
        let back = HotpathReport::from_json(&Json::parse(&text).expect("parse")).expect("decode");
        assert!(back.warm_fork);
        // A pre-warm-fork baseline (no field at all) parses as false.
        let legacy = sample_report();
        let mut v = legacy.to_json();
        if let Json::Obj(pairs) = &mut v {
            pairs.retain(|(k, _)| k != "warm_fork");
        }
        let back = HotpathReport::from_json(&Json::parse(&v.to_string_pretty()).expect("parse"))
            .expect("decode");
        assert!(!back.warm_fork);
    }
}
