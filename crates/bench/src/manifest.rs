//! Run-manifest observability layer.
//!
//! Every simulated cell — a (workload, input set, system) triple — yields
//! a [`RunRecord`]: the machine-config hash, the full
//! [`StatsSummary`](sim_core::StatsSummary) (IPC, BPKI, per-prefetcher
//! accuracy/coverage, ...) and the wall time of the fresh simulation.
//! Figure and section binaries bundle their records into a [`Manifest`]
//! written to `target/lab/<name>.json`, which the regression tests (and
//! any external tooling) consume instead of re-parsing report text.
//!
//! Records are deterministic: two runs of the same build produce
//! byte-identical manifests except for the `wall_ms` fields.

use std::path::PathBuf;

use ecdp::system::SystemKind;
use sim_core::{Json, MachineConfig, RunStats, StatsSummary};
use workloads::InputSet;

/// Hash of the default machine configuration, recorded in every
/// [`RunRecord`] so stale manifests are detectable after config changes.
///
/// FNV-1a over the `Debug` rendering of [`MachineConfig::default`]: not
/// cryptographic, but any field change changes the hash.
pub fn config_hash() -> u64 {
    let rendered = format!("{:?}", MachineConfig::default());
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in rendered.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// The outcome of one simulated cell.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Workload name (as accepted by `workloads::by_name`).
    pub workload: String,
    /// Input set, lower-cased (`"train"` / `"ref"` / `"test"`).
    pub input: String,
    /// System label (see `SystemKind::label`).
    pub system: String,
    /// Hash of the machine configuration the run used.
    pub config_hash: u64,
    /// Wall-clock milliseconds of the fresh simulation (the only
    /// non-deterministic field; compare with [`RunRecord::same_metrics`]).
    pub wall_ms: f64,
    /// Full deterministic statistics summary.
    pub stats: StatsSummary,
}

impl RunRecord {
    /// Builds a record from a finished run.
    pub fn new(
        workload: &str,
        input: InputSet,
        kind: SystemKind,
        stats: &RunStats,
        wall_ms: f64,
    ) -> Self {
        RunRecord {
            workload: workload.to_string(),
            input: format!("{input:?}").to_lowercase(),
            system: kind.label().to_string(),
            config_hash: config_hash(),
            wall_ms,
            stats: stats.summary(),
        }
    }

    /// Sort key giving manifests a stable record order.
    pub fn sort_key(&self) -> (String, String, String) {
        (
            self.workload.clone(),
            self.input.clone(),
            self.system.clone(),
        )
    }

    /// Deterministic equality: every field except `wall_ms`.
    pub fn same_metrics(&self, other: &RunRecord) -> bool {
        self.workload == other.workload
            && self.input == other.input
            && self.system == other.system
            && self.config_hash == other.config_hash
            && self.stats == other.stats
    }

    /// JSON form (field order is part of the manifest format).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("workload", Json::Str(self.workload.clone())),
            ("input", Json::Str(self.input.clone())),
            ("system", Json::Str(self.system.clone())),
            // Hex string: a full 64-bit hash is not exactly representable
            // as a JSON number (f64 has 53 mantissa bits).
            (
                "config_hash",
                Json::Str(format!("{:016x}", self.config_hash)),
            ),
            ("wall_ms", Json::Num(self.wall_ms)),
            ("stats", self.stats.to_json()),
        ])
    }

    /// Parses a record produced by [`RunRecord::to_json`].
    pub fn from_json(j: &Json) -> Option<Self> {
        Some(RunRecord {
            workload: j.get("workload")?.as_str()?.to_string(),
            input: j.get("input")?.as_str()?.to_string(),
            system: j.get("system")?.as_str()?.to_string(),
            config_hash: u64::from_str_radix(j.get("config_hash")?.as_str()?, 16).ok()?,
            wall_ms: j.get("wall_ms")?.as_f64()?,
            stats: StatsSummary::from_json(j.get("stats")?).ok()?,
        })
    }
}

/// A named collection of run records, serialized to `target/lab/`.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Manifest name; also the output file stem.
    pub name: String,
    /// Records in stable (workload, input, system) order.
    pub records: Vec<RunRecord>,
}

impl Manifest {
    /// JSON form of the whole manifest.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::Str(self.name.clone())),
            ("schema_version", Json::Num(1.0)),
            (
                "records",
                Json::Arr(self.records.iter().map(RunRecord::to_json).collect()),
            ),
        ])
    }

    /// Parses manifest text written by [`Manifest::write`].
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on malformed JSON or a record
    /// missing required fields.
    pub fn parse(text: &str) -> Result<Self, String> {
        let j = Json::parse(text)?;
        let name = j
            .get("name")
            .and_then(Json::as_str)
            .ok_or("manifest missing name")?
            .to_string();
        let mut records = Vec::new();
        for (i, r) in j
            .get("records")
            .and_then(Json::as_arr)
            .ok_or("manifest missing records")?
            .iter()
            .enumerate()
        {
            records.push(RunRecord::from_json(r).ok_or_else(|| format!("bad record {i}"))?);
        }
        Ok(Manifest { name, records })
    }

    /// The directory manifests are written to: `$BENCH_LAB_DIR` if set,
    /// else `target/lab` relative to the current directory.
    pub fn out_dir() -> PathBuf {
        std::env::var_os("BENCH_LAB_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("target").join("lab"))
    }

    /// Writes the manifest to `<out_dir>/<name>.json` and returns the
    /// path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let dir = Self::out_dir();
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{}.json", self.name));
        std::fs::write(&path, self.to_json().to_string_pretty())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record(wall_ms: f64) -> RunRecord {
        let stats = RunStats::default();
        RunRecord::new(
            "mst",
            InputSet::Ref,
            SystemKind::StreamEcdpThrottled,
            &stats,
            wall_ms,
        )
    }

    #[test]
    fn record_roundtrips_through_json() {
        let r = sample_record(12.5);
        let parsed = RunRecord::from_json(&r.to_json()).unwrap();
        assert_eq!(r, parsed);
        assert_eq!(parsed.input, "ref");
        assert_eq!(parsed.system, SystemKind::StreamEcdpThrottled.label());
    }

    #[test]
    fn same_metrics_ignores_wall_time_only() {
        let a = sample_record(1.0);
        let mut b = sample_record(99.0);
        assert!(a.same_metrics(&b));
        b.stats.cycles += 1;
        assert!(!a.same_metrics(&b));
    }

    #[test]
    fn manifest_roundtrips_and_is_deterministic() {
        let m = Manifest {
            name: "unit".to_string(),
            records: vec![sample_record(3.0), sample_record(4.0)],
        };
        let text = m.to_json().to_string_pretty();
        assert_eq!(text, m.to_json().to_string_pretty());
        let parsed = Manifest::parse(&text).unwrap();
        assert_eq!(m, parsed);
    }

    #[test]
    fn config_hash_is_stable_within_process() {
        assert_eq!(config_hash(), config_hash());
    }
}
