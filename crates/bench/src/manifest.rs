//! Run-manifest observability layer.
//!
//! Every simulated cell — a (workload, input set, system) triple — yields
//! a [`RunOutcome`]: either a [`RunRecord`] with the machine-config hash,
//! the full [`sim_core::StatsSummary`] (IPC, BPKI,
//! per-prefetcher accuracy/coverage, ...) and the wall time of the fresh
//! simulation, or a [`FailureRecord`] carrying the structured error of a
//! cell that panicked or wedged. Figure and section binaries bundle their
//! outcomes into a [`Manifest`] written to `target/lab/<name>.json`,
//! which the regression tests (and any external tooling) consume instead
//! of re-parsing report text.
//!
//! Successful records are deterministic: two runs of the same build
//! produce byte-identical manifests except for the `wall_ms` fields.
//!
//! # Schema
//!
//! `schema_version` is 3. A success record has no `outcome` field (for
//! compatibility with version-1 readers and golden files); a failure
//! record carries `"outcome": "failed"` plus `error_kind` (the stable
//! [`SimError::kind`](sim_core::SimError::kind) tag, or `"panic"`) and a
//! human-readable `error` message, and has no `stats`.
//!
//! Version 3 adds two optional fields, both omitted when absent so v1/v2
//! documents (and fault-free single-attempt runs) stay byte-compatible:
//! `retry` (a [`RetryInfo`] object — the supervisor's attempt history)
//! on both record shapes, and `store` (the result-store disposition,
//! `"hit"` / `"appended"` / `"degraded:<reason>"`) on success records.
//! Success records for workloads loaded from a file (`--workload-file` /
//! `workload_files`) additionally carry `workload_hash` — the 16-hex
//! content hash of the source file (see [`workload_provenance`]) —
//! omitted for built-in workloads. [`Manifest::parse`] accepts all
//! three versions.
//!
//! # Crash safety
//!
//! [`Manifest::write`] is atomic (temp file + rename in the output
//! directory), and [`ManifestWriter`] re-writes the manifest after every
//! completed cell — a killed sweep leaves a valid manifest of everything
//! that finished, which `run_all --resume` uses to skip completed cells.

use std::path::PathBuf;
use std::sync::Mutex;

use ecdp::system::SystemKind;
use sim_core::{Json, MachineConfig, RunStats, StatsSummary};
use workloads::InputSet;

/// Hash of the default machine configuration, recorded in every
/// [`RunRecord`] so stale manifests are detectable after config changes.
///
/// FNV-1a over the `Debug` rendering of [`MachineConfig::default`]: not
/// cryptographic, but any field change changes the hash.
pub fn config_hash() -> u64 {
    let rendered = format!("{:?}", MachineConfig::default());
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in rendered.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// The registry's provenance hash for `workload` as a 16-digit hex
/// string: the content hash of the `.wl` spec or external trace the
/// name was loaded from, or `None` for built-in workloads (whose
/// definition is pinned by the build itself).
///
/// Recorded in every [`RunRecord`] so a result computed from one
/// version of a user-supplied file is never mistaken for the same cell
/// after the file changed — resume skips and result-store hits both
/// require the recorded hash to match the current registry state.
pub fn workload_provenance(workload: &str) -> Option<String> {
    workloads::registry::lookup(workload)
        .and_then(|h| h.provenance_hash())
        .map(|h| format!("{h:016x}"))
}

/// The sweep supervisor's attempt history for one cell: how many times
/// the cell ran, what each failed attempt died of, and how long the
/// deterministic backoff between attempts added up to.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RetryInfo {
    /// Total attempts made (the successful one included), ≥ 1.
    pub attempts: u32,
    /// One `"<error_kind>:<class>"` entry per *failed* attempt, in
    /// order (e.g. `"deadline:transient"`), using the stable
    /// [`SimError::kind`](sim_core::SimError::kind) and
    /// [`ErrorClass::label`](sim_core::ErrorClass::label) tags.
    pub attempt_errors: Vec<String>,
    /// Milliseconds slept across all backoff intervals.
    pub total_backoff_ms: u64,
}

impl RetryInfo {
    /// JSON form.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("attempts", Json::Num(f64::from(self.attempts))),
            (
                "attempt_errors",
                Json::Arr(
                    self.attempt_errors
                        .iter()
                        .map(|e| Json::Str(e.clone()))
                        .collect(),
                ),
            ),
            ("total_backoff_ms", Json::Num(self.total_backoff_ms as f64)),
        ])
    }

    /// Parses a value produced by [`RetryInfo::to_json`].
    pub fn from_json(j: &Json) -> Option<Self> {
        Some(RetryInfo {
            attempts: j.get("attempts")?.as_u64()? as u32,
            attempt_errors: j
                .get("attempt_errors")?
                .as_arr()?
                .iter()
                .map(|e| e.as_str().map(ToString::to_string))
                .collect::<Option<Vec<_>>>()?,
            total_backoff_ms: j.get("total_backoff_ms")?.as_u64()?,
        })
    }
}

/// The outcome of one successfully simulated cell.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Workload name (as resolved by `workloads::registry::lookup`).
    pub workload: String,
    /// Input set, lower-cased (`"train"` / `"ref"` / `"test"`).
    pub input: String,
    /// System label (see `SystemKind::label`).
    pub system: String,
    /// Hash of the machine configuration the run used.
    pub config_hash: u64,
    /// Content hash of the workload file the workload was loaded from
    /// (16 hex digits), when the workload came from `--workload-file` /
    /// `workload_files`. `None` for built-in workloads; omitted from
    /// the JSON when absent so built-in manifests stay byte-identical
    /// to the version-3 format.
    pub workload_hash: Option<String>,
    /// Wall-clock milliseconds of the fresh simulation (the only
    /// non-deterministic field; compare with [`RunRecord::same_metrics`]).
    pub wall_ms: f64,
    /// Full deterministic statistics summary.
    pub stats: StatsSummary,
    /// Path of the per-interval `timeseries.json` artifact, when the cell
    /// ran with `--trace-dir`. Omitted from the JSON when absent.
    pub timeseries_path: Option<String>,
    /// Path of the `obs.jsonl` decision-trace artifact, when the cell ran
    /// with `--trace-dir`. Omitted from the JSON when absent.
    pub obs_path: Option<String>,
    /// Warm-checkpoint disposition of the cell, when the lab ran with a
    /// checkpoint store: `"created"`, `"forked"`, `"cold"` or
    /// `"fallback:<reason>"` for a corrupt/unreadable checkpoint that
    /// fell back to cold simulation. Omitted from the JSON when absent.
    pub checkpoint: Option<String>,
    /// The supervisor's attempt history, when the cell needed more than
    /// one attempt. Omitted from the JSON when absent.
    pub retry: Option<RetryInfo>,
    /// Result-store disposition (`"hit"`, `"appended"`,
    /// `"degraded:<reason>"`), when the sweep ran with a persistent
    /// result store. Omitted from the JSON when absent.
    pub store: Option<String>,
}

impl RunRecord {
    /// Builds a record from a finished run.
    pub fn new(
        workload: &str,
        input: InputSet,
        kind: SystemKind,
        stats: &RunStats,
        wall_ms: f64,
    ) -> Self {
        RunRecord {
            workload: workload.to_string(),
            input: format!("{input:?}").to_lowercase(),
            system: kind.label().to_string(),
            config_hash: config_hash(),
            workload_hash: workload_provenance(workload),
            wall_ms,
            stats: stats.summary(),
            timeseries_path: None,
            obs_path: None,
            checkpoint: None,
            retry: None,
            store: None,
        }
    }

    /// Sort key giving manifests a stable record order.
    pub fn sort_key(&self) -> (String, String, String) {
        (
            self.workload.clone(),
            self.input.clone(),
            self.system.clone(),
        )
    }

    /// Deterministic equality: every field except `wall_ms`, the trace
    /// artifact paths (which embed the caller's output directory) and
    /// the checkpoint disposition (a forked rerun must count as equal
    /// to the cold run it reproduces).
    pub fn same_metrics(&self, other: &RunRecord) -> bool {
        self.workload == other.workload
            && self.input == other.input
            && self.system == other.system
            && self.config_hash == other.config_hash
            && self.workload_hash == other.workload_hash
            && self.stats == other.stats
    }

    /// JSON form (field order is part of the manifest format; the trace
    /// artifact paths are appended only when present, so untraced
    /// manifests are byte-identical to the version-2 format).
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("workload", Json::Str(self.workload.clone())),
            ("input", Json::Str(self.input.clone())),
            ("system", Json::Str(self.system.clone())),
            // Hex string: a full 64-bit hash is not exactly representable
            // as a JSON number (f64 has 53 mantissa bits).
            (
                "config_hash",
                Json::Str(format!("{:016x}", self.config_hash)),
            ),
            ("wall_ms", Json::Num(self.wall_ms)),
            ("stats", self.stats.to_json()),
        ];
        if let Some(h) = &self.workload_hash {
            pairs.push(("workload_hash", Json::Str(h.clone())));
        }
        if let Some(p) = &self.timeseries_path {
            pairs.push(("timeseries_path", Json::Str(p.clone())));
        }
        if let Some(p) = &self.obs_path {
            pairs.push(("obs_path", Json::Str(p.clone())));
        }
        if let Some(c) = &self.checkpoint {
            pairs.push(("checkpoint", Json::Str(c.clone())));
        }
        if let Some(r) = &self.retry {
            pairs.push(("retry", r.to_json()));
        }
        if let Some(s) = &self.store {
            pairs.push(("store", Json::Str(s.clone())));
        }
        Json::obj(pairs)
    }

    /// Parses a record produced by [`RunRecord::to_json`].
    pub fn from_json(j: &Json) -> Option<Self> {
        Some(RunRecord {
            workload: j.get("workload")?.as_str()?.to_string(),
            input: j.get("input")?.as_str()?.to_string(),
            system: j.get("system")?.as_str()?.to_string(),
            config_hash: u64::from_str_radix(j.get("config_hash")?.as_str()?, 16).ok()?,
            workload_hash: j
                .get("workload_hash")
                .and_then(Json::as_str)
                .map(ToString::to_string),
            wall_ms: j.get("wall_ms")?.as_f64()?,
            stats: StatsSummary::from_json(j.get("stats")?).ok()?,
            timeseries_path: j
                .get("timeseries_path")
                .and_then(Json::as_str)
                .map(ToString::to_string),
            obs_path: j
                .get("obs_path")
                .and_then(Json::as_str)
                .map(ToString::to_string),
            checkpoint: j
                .get("checkpoint")
                .and_then(Json::as_str)
                .map(ToString::to_string),
            retry: j.get("retry").and_then(RetryInfo::from_json),
            store: j
                .get("store")
                .and_then(Json::as_str)
                .map(ToString::to_string),
        })
    }
}

/// The outcome of a cell whose simulation panicked or returned a
/// [`SimError`](sim_core::SimError).
#[derive(Debug, Clone, PartialEq)]
pub struct FailureRecord {
    /// Workload name.
    pub workload: String,
    /// Input set, lower-cased.
    pub input: String,
    /// System label.
    pub system: String,
    /// Hash of the machine configuration the run used.
    pub config_hash: u64,
    /// Stable error tag: a [`SimError::kind`](sim_core::SimError::kind)
    /// value (`"deadlock"`, `"cycle-budget"`, `"invariant"`) or
    /// `"panic"`.
    pub error_kind: String,
    /// Human-readable error message (includes the diagnostic snapshot
    /// for engine failures).
    pub error: String,
    /// Wall-clock milliseconds until the failure was detected.
    pub wall_ms: f64,
    /// The supervisor's attempt history (every attempt failed). Omitted
    /// from the JSON when absent.
    pub retry: Option<RetryInfo>,
}

impl FailureRecord {
    /// Builds a failure record for one cell.
    pub fn new(
        workload: &str,
        input: InputSet,
        kind: SystemKind,
        error_kind: &str,
        error: &str,
        wall_ms: f64,
    ) -> Self {
        FailureRecord {
            workload: workload.to_string(),
            input: format!("{input:?}").to_lowercase(),
            system: kind.label().to_string(),
            config_hash: config_hash(),
            error_kind: error_kind.to_string(),
            error: error.to_string(),
            wall_ms,
            retry: None,
        }
    }

    /// JSON form; the `"outcome": "failed"` field is the discriminator.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("workload", Json::Str(self.workload.clone())),
            ("input", Json::Str(self.input.clone())),
            ("system", Json::Str(self.system.clone())),
            (
                "config_hash",
                Json::Str(format!("{:016x}", self.config_hash)),
            ),
            ("outcome", Json::Str("failed".to_string())),
            ("error_kind", Json::Str(self.error_kind.clone())),
            ("error", Json::Str(self.error.clone())),
            ("wall_ms", Json::Num(self.wall_ms)),
        ];
        if let Some(r) = &self.retry {
            pairs.push(("retry", r.to_json()));
        }
        Json::obj(pairs)
    }

    /// Parses a record produced by [`FailureRecord::to_json`].
    pub fn from_json(j: &Json) -> Option<Self> {
        if j.get("outcome")?.as_str()? != "failed" {
            return None;
        }
        Some(FailureRecord {
            workload: j.get("workload")?.as_str()?.to_string(),
            input: j.get("input")?.as_str()?.to_string(),
            system: j.get("system")?.as_str()?.to_string(),
            config_hash: u64::from_str_radix(j.get("config_hash")?.as_str()?, 16).ok()?,
            error_kind: j.get("error_kind")?.as_str()?.to_string(),
            error: j.get("error")?.as_str()?.to_string(),
            wall_ms: j.get("wall_ms")?.as_f64()?,
            retry: j.get("retry").and_then(RetryInfo::from_json),
        })
    }
}

/// One manifest entry: a completed cell, successful or failed.
#[derive(Debug, Clone, PartialEq)]
pub enum RunOutcome {
    /// The cell simulated to completion.
    Success(RunRecord),
    /// The cell panicked or returned a simulation error.
    Failed(FailureRecord),
}

impl RunOutcome {
    /// Workload name of the cell.
    pub fn workload(&self) -> &str {
        match self {
            RunOutcome::Success(r) => &r.workload,
            RunOutcome::Failed(f) => &f.workload,
        }
    }

    /// Input-set label of the cell.
    pub fn input(&self) -> &str {
        match self {
            RunOutcome::Success(r) => &r.input,
            RunOutcome::Failed(f) => &f.input,
        }
    }

    /// System label of the cell.
    pub fn system(&self) -> &str {
        match self {
            RunOutcome::Success(r) => &r.system,
            RunOutcome::Failed(f) => &f.system,
        }
    }

    /// Machine-config hash the cell ran under.
    pub fn config_hash(&self) -> u64 {
        match self {
            RunOutcome::Success(r) => r.config_hash,
            RunOutcome::Failed(f) => f.config_hash,
        }
    }

    /// True for [`RunOutcome::Failed`].
    pub fn is_failed(&self) -> bool {
        matches!(self, RunOutcome::Failed(_))
    }

    /// The success record, if any.
    pub fn success(&self) -> Option<&RunRecord> {
        match self {
            RunOutcome::Success(r) => Some(r),
            RunOutcome::Failed(_) => None,
        }
    }

    /// The failure record, if any.
    pub fn failure(&self) -> Option<&FailureRecord> {
        match self {
            RunOutcome::Success(_) => None,
            RunOutcome::Failed(f) => Some(f),
        }
    }

    /// Stable (workload, input, system) sort key.
    pub fn sort_key(&self) -> (String, String, String) {
        (
            self.workload().to_string(),
            self.input().to_string(),
            self.system().to_string(),
        )
    }

    /// JSON form (success records carry no `outcome` field).
    pub fn to_json(&self) -> Json {
        match self {
            RunOutcome::Success(r) => r.to_json(),
            RunOutcome::Failed(f) => f.to_json(),
        }
    }

    /// Parses either record shape; records without an `outcome` field
    /// are successes (the version-1 format).
    pub fn from_json(j: &Json) -> Option<Self> {
        match j.get("outcome").and_then(Json::as_str) {
            Some("failed") => FailureRecord::from_json(j).map(RunOutcome::Failed),
            Some(_) => None,
            None => RunRecord::from_json(j).map(RunOutcome::Success),
        }
    }
}

/// A named collection of run outcomes, serialized to `target/lab/`.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Manifest name; also the output file stem.
    pub name: String,
    /// Outcomes in stable (workload, input, system) order.
    pub records: Vec<RunOutcome>,
}

impl Manifest {
    /// The success records, in manifest order.
    pub fn successes(&self) -> impl Iterator<Item = &RunRecord> {
        self.records.iter().filter_map(RunOutcome::success)
    }

    /// The failure records, in manifest order.
    pub fn failures(&self) -> impl Iterator<Item = &FailureRecord> {
        self.records.iter().filter_map(RunOutcome::failure)
    }

    /// True if a *successful* record for this exact cell (including the
    /// machine-config hash) exists — the resume-skip criterion.
    pub fn has_success(&self, workload: &str, input: &str, system: &str, config: u64) -> bool {
        self.successes().any(|r| {
            r.workload == workload
                && r.input == input
                && r.system == system
                && r.config_hash == config
        })
    }

    /// JSON form of the whole manifest.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::Str(self.name.clone())),
            ("schema_version", Json::Num(3.0)),
            (
                "records",
                Json::Arr(self.records.iter().map(RunOutcome::to_json).collect()),
            ),
        ])
    }

    /// Parses manifest text written by [`Manifest::write`] (any schema
    /// version, 1 through 3).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on malformed JSON or a record
    /// missing required fields.
    pub fn parse(text: &str) -> Result<Self, String> {
        let j = Json::parse(text)?;
        let name = j
            .get("name")
            .and_then(Json::as_str)
            .ok_or("manifest missing name")?
            .to_string();
        let mut records = Vec::new();
        for (i, r) in j
            .get("records")
            .and_then(Json::as_arr)
            .ok_or("manifest missing records")?
            .iter()
            .enumerate()
        {
            records.push(RunOutcome::from_json(r).ok_or_else(|| format!("bad record {i}"))?);
        }
        Ok(Manifest { name, records })
    }

    /// Loads and parses `<out_dir>/<name>.json`, if present and valid.
    pub fn load(name: &str) -> Option<Self> {
        let text = std::fs::read_to_string(Self::out_dir().join(format!("{name}.json"))).ok()?;
        Manifest::parse(&text).ok()
    }

    /// The directory manifests are written to: `BENCH_LAB_DIR` (via the
    /// [`crate::request::compat`] gate, so a resolved
    /// [`crate::request::SweepRequest`] with `lab_dir` wins) if set,
    /// else `target/lab` relative to the current directory.
    pub fn out_dir() -> PathBuf {
        crate::request::compat::setting("BENCH_LAB_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("target").join("lab"))
    }

    /// Atomically writes the manifest to `<out_dir>/<name>.json` and
    /// returns the path.
    ///
    /// The content is first written to a temp file in the same directory
    /// and then renamed into place, so a crash mid-write never leaves a
    /// truncated manifest (the previous version, if any, survives).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let dir = Self::out_dir();
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{}.json", self.name));
        let tmp = dir.join(format!(".{}.json.tmp-{}", self.name, std::process::id()));
        std::fs::write(&tmp, self.to_json().to_string_pretty())?;
        match std::fs::rename(&tmp, &path) {
            Ok(()) => Ok(path),
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                Err(e)
            }
        }
    }
}

/// Incremental, crash-safe manifest output.
///
/// Sweep workers report each completed cell via [`ManifestWriter::append`]
/// together with its plan-order index; the writer keeps the outcomes
/// sorted by that index and atomically re-writes the manifest file after
/// every append. Killing the process at any point leaves a valid
/// manifest of every cell completed so far.
#[derive(Debug)]
pub struct ManifestWriter {
    name: String,
    state: Mutex<Vec<(usize, RunOutcome)>>,
}

impl ManifestWriter {
    /// Creates a writer for `<out_dir>/<name>.json`.
    pub fn new(name: impl Into<String>) -> Self {
        ManifestWriter {
            name: name.into(),
            state: Mutex::new(Vec::new()),
        }
    }

    /// Records one completed cell (at plan index `order`) and re-writes
    /// the manifest file.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; the in-memory state is updated
    /// regardless, so a later append retries the write.
    pub fn append(&self, order: usize, outcome: RunOutcome) -> std::io::Result<PathBuf> {
        // The write happens while the lock is held: concurrent appends
        // share one temp-file path (the pid), and an unserialized rename
        // could land a stale snapshot last.
        let mut state = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        state.push((order, outcome));
        state.sort_by_key(|(i, _)| *i);
        let manifest = Manifest {
            name: self.name.clone(),
            records: state.iter().map(|(_, o)| o.clone()).collect(),
        };
        manifest.write()
    }

    /// The manifest assembled so far, in plan order.
    pub fn manifest(&self) -> Manifest {
        let state = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        Manifest {
            name: self.name.clone(),
            records: state.iter().map(|(_, o)| o.clone()).collect(),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn sample_record(wall_ms: f64) -> RunRecord {
        let stats = RunStats::default();
        RunRecord::new(
            "mst",
            InputSet::Ref,
            SystemKind::StreamEcdpThrottled,
            &stats,
            wall_ms,
        )
    }

    fn sample_failure() -> FailureRecord {
        FailureRecord::new(
            "health",
            InputSet::Test,
            SystemKind::StreamCdp,
            "deadlock",
            "simulator deadlock: cycle 42 ...",
            3.5,
        )
    }

    #[test]
    fn record_roundtrips_through_json() {
        let r = sample_record(12.5);
        let parsed = RunRecord::from_json(&r.to_json()).unwrap();
        assert_eq!(r, parsed);
        assert_eq!(parsed.input, "ref");
        assert_eq!(parsed.system, SystemKind::StreamEcdpThrottled.label());
    }

    #[test]
    fn failure_roundtrips_through_json() {
        let f = sample_failure();
        let j = f.to_json();
        assert_eq!(j.get("outcome").and_then(Json::as_str), Some("failed"));
        let parsed = FailureRecord::from_json(&j).unwrap();
        assert_eq!(f, parsed);
        // The generic outcome parser discriminates on the field.
        assert!(RunOutcome::from_json(&j).unwrap().is_failed());
        let s = RunOutcome::from_json(&sample_record(1.0).to_json()).unwrap();
        assert!(!s.is_failed());
    }

    #[test]
    fn same_metrics_ignores_wall_time_only() {
        let a = sample_record(1.0);
        let mut b = sample_record(99.0);
        assert!(a.same_metrics(&b));
        b.stats.cycles += 1;
        assert!(!a.same_metrics(&b));
    }

    #[test]
    fn manifest_roundtrips_and_is_deterministic() {
        let m = Manifest {
            name: "unit".to_string(),
            records: vec![
                RunOutcome::Success(sample_record(3.0)),
                RunOutcome::Failed(sample_failure()),
            ],
        };
        let text = m.to_json().to_string_pretty();
        assert_eq!(text, m.to_json().to_string_pretty());
        let parsed = Manifest::parse(&text).unwrap();
        assert_eq!(m, parsed);
        assert_eq!(parsed.successes().count(), 1);
        assert_eq!(parsed.failures().count(), 1);
        let r = sample_record(0.0);
        assert!(parsed.has_success(&r.workload, &r.input, &r.system, r.config_hash));
        let f = sample_failure();
        assert!(
            !parsed.has_success(&f.workload, &f.input, &f.system, f.config_hash),
            "failed cells must not satisfy the resume-skip criterion"
        );
    }

    #[test]
    fn trace_paths_are_optional_and_roundtrip() {
        let plain = sample_record(1.0);
        assert!(plain.to_json().get("timeseries_path").is_none());
        assert!(plain.to_json().get("obs_path").is_none());
        let mut traced = sample_record(2.0);
        traced.timeseries_path = Some("target/traces/cell/timeseries.json".to_string());
        traced.obs_path = Some("target/traces/cell/obs.jsonl".to_string());
        let parsed = RunRecord::from_json(&traced.to_json()).unwrap();
        assert_eq!(traced, parsed);
        assert!(
            plain.same_metrics(&traced),
            "artifact paths must not affect metric equality"
        );
    }

    #[test]
    fn config_hash_is_stable_within_process() {
        assert_eq!(config_hash(), config_hash());
    }

    #[test]
    fn workload_hash_is_omitted_for_builtins_and_roundtrips() {
        let builtin = sample_record(1.0);
        assert_eq!(builtin.workload_hash, None, "mst is a built-in");
        assert!(builtin.to_json().get("workload_hash").is_none());

        let mut loaded = sample_record(1.0);
        loaded.workload_hash = Some("00000000feedface".to_string());
        let parsed = RunRecord::from_json(&loaded.to_json()).unwrap();
        assert_eq!(parsed.workload_hash.as_deref(), Some("00000000feedface"));
        assert!(
            !builtin.same_metrics(&loaded),
            "a record from a different workload file must not compare equal"
        );
    }

    #[test]
    fn retry_info_roundtrips_on_both_record_shapes() {
        let info = RetryInfo {
            attempts: 3,
            attempt_errors: vec![
                "deadline:transient".to_string(),
                "deadline:transient".to_string(),
            ],
            total_backoff_ms: 150,
        };
        assert_eq!(RetryInfo::from_json(&info.to_json()).unwrap(), info);

        let mut r = sample_record(1.0);
        r.retry = Some(info.clone());
        r.store = Some("appended".to_string());
        let parsed = RunRecord::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed.retry.as_ref(), Some(&info));
        assert_eq!(parsed.store.as_deref(), Some("appended"));
        assert!(
            sample_record(1.0).same_metrics(&parsed),
            "retry/store fields must not affect metric equality"
        );

        let mut f = sample_failure();
        f.retry = Some(info.clone());
        let parsed = FailureRecord::from_json(&f.to_json()).unwrap();
        assert_eq!(parsed.retry, Some(info));
    }

    #[test]
    fn v3_fields_are_omitted_when_absent() {
        // A single-attempt, store-less run serializes exactly as the
        // version-2 format did — golden manifests stay byte-stable.
        let j = sample_record(1.0).to_json();
        assert!(j.get("retry").is_none());
        assert!(j.get("store").is_none());
        assert!(sample_failure().to_json().get("retry").is_none());
    }

    #[test]
    fn parses_v1_and_v2_manifest_documents() {
        // Version 1: success records only, no outcome/checkpoint/retry
        // fields, schema_version 1.
        let v1 = r#"{
          "name": "legacy",
          "schema_version": 1,
          "records": [
            {
              "workload": "mst", "input": "ref", "system": "stream",
              "config_hash": "00000000deadbeef", "wall_ms": 4.0,
              "stats": STATS
            }
          ]
        }"#
        .replace(
            "STATS",
            &RunStats::default().summary().to_json().to_string_compact(),
        );
        let m = Manifest::parse(&v1).unwrap();
        assert_eq!(m.successes().count(), 1);
        let r = m.successes().next().unwrap();
        assert_eq!(r.config_hash, 0xdead_beef);
        assert_eq!(r.retry, None);
        assert_eq!(r.store, None);

        // Version 2: adds failure records and checkpoint dispositions.
        let v2 = r#"{
          "name": "legacy2",
          "schema_version": 2,
          "records": [
            {
              "workload": "mst", "input": "ref", "system": "stream",
              "config_hash": "00000000deadbeef", "wall_ms": 4.0,
              "stats": STATS, "checkpoint": "forked"
            },
            {
              "workload": "health", "input": "test", "system": "stream+cdp",
              "config_hash": "00000000deadbeef", "outcome": "failed",
              "error_kind": "deadlock", "error": "wedged", "wall_ms": 1.0
            }
          ]
        }"#
        .replace(
            "STATS",
            &RunStats::default().summary().to_json().to_string_compact(),
        );
        let m = Manifest::parse(&v2).unwrap();
        assert_eq!(m.successes().count(), 1);
        assert_eq!(m.failures().count(), 1);
        assert_eq!(
            m.successes().next().unwrap().checkpoint.as_deref(),
            Some("forked")
        );
        assert_eq!(m.failures().next().unwrap().retry, None);
    }
}
