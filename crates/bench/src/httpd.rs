//! Minimal HTTP/1.1 plumbing for the `sweepd` service binary.
//!
//! The workspace takes no external dependencies — there is no async
//! runtime or web framework in the tree — so the service speaks plain
//! HTTP over [`std::net`]: one thread per connection, `Connection:
//! close` on every response, and streaming bodies terminated by closing
//! the socket (legal for HTTP/1.1 without `Content-Length`). That is a
//! deliberately boring transport: all the interesting behavior lives in
//! [`crate::service`], and the parser here is small enough to unit-test
//! exhaustively.
//!
//! Progress streams are JSONL by default; a client sending
//! `Accept: text/event-stream` gets the same lines in SSE framing
//! (`data: <line>\n\n`), which browsers' `EventSource` consumes
//! directly.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::Arc;

/// Cap on request head + body, defending the parser against garbage.
pub const MAX_REQUEST_BYTES: usize = 1 << 20;

/// One parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Request method, upper-case as sent (`GET`, `POST`, …).
    pub method: String,
    /// Request path with the query string stripped.
    pub path: String,
    /// Raw query string (without `?`), empty when absent.
    pub query: String,
    /// Header name/value pairs; names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Request body (`Content-Length` bytes).
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// The first header with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// True when the client asked for SSE framing.
    pub fn wants_sse(&self) -> bool {
        self.header("accept")
            .is_some_and(|a| a.contains("text/event-stream"))
    }

    /// The path split on `/`, empty segments dropped:
    /// `/jobs/3/events` → `["jobs", "3", "events"]`.
    pub fn segments(&self) -> Vec<&str> {
        self.path.split('/').filter(|s| !s.is_empty()).collect()
    }
}

/// Parses one request from a buffered stream.
///
/// # Errors
///
/// Returns a one-line message on malformed request lines or headers, a
/// missing body, or a request exceeding [`MAX_REQUEST_BYTES`].
pub fn parse_request<R: BufRead>(reader: &mut R) -> Result<HttpRequest, String> {
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("read request line: {e}"))?;
    let mut parts = line.split_whitespace();
    let method = parts.next().ok_or("empty request line")?.to_uppercase();
    let target = parts.next().ok_or("request line is missing the path")?;
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    let mut head_bytes = line.len();
    loop {
        let mut h = String::new();
        reader
            .read_line(&mut h)
            .map_err(|e| format!("read header: {e}"))?;
        head_bytes += h.len();
        if head_bytes > MAX_REQUEST_BYTES {
            return Err("request head too large".to_string());
        }
        let h = h.trim_end_matches(['\r', '\n']);
        if h.is_empty() {
            break;
        }
        let (name, value) = h
            .split_once(':')
            .ok_or_else(|| format!("malformed header {h:?}"))?;
        let name = name.trim().to_lowercase();
        let value = value.trim().to_string();
        if name == "content-length" {
            content_length = value
                .parse()
                .map_err(|_| format!("bad content-length {value:?}"))?;
            if content_length > MAX_REQUEST_BYTES {
                return Err("request body too large".to_string());
            }
        }
        headers.push((name, value));
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| format!("read body: {e}"))?;
    Ok(HttpRequest {
        method,
        path,
        query,
        headers,
        body,
    })
}

/// The reason phrase for the handful of status codes the service uses.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Writes a complete response with a body and closes out the exchange.
///
/// # Errors
///
/// Propagates socket write errors.
pub fn respond(
    stream: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        reason(status),
        body.len(),
    )?;
    stream.write_all(body)?;
    stream.flush()
}

/// Writes a JSON response.
///
/// # Errors
///
/// Propagates socket write errors.
pub fn respond_json(
    stream: &mut impl Write,
    status: u16,
    json: &sim_core::Json,
) -> std::io::Result<()> {
    respond(
        stream,
        status,
        "application/json",
        json.to_string_pretty().as_bytes(),
    )
}

/// Writes a plain-text error response.
///
/// # Errors
///
/// Propagates socket write errors.
pub fn respond_error(stream: &mut impl Write, status: u16, msg: &str) -> std::io::Result<()> {
    respond(stream, status, "text/plain", format!("{msg}\n").as_bytes())
}

/// Starts a streaming response: headers only, no `Content-Length` — the
/// body is whatever the caller writes until it closes the socket. Pass
/// `sse` to switch the content type to `text/event-stream`.
///
/// # Errors
///
/// Propagates socket write errors.
pub fn start_stream(stream: &mut impl Write, sse: bool) -> std::io::Result<()> {
    let content_type = if sse {
        "text/event-stream"
    } else {
        "application/x-ndjson"
    };
    write!(
        stream,
        "HTTP/1.1 200 OK\r\ncontent-type: {content_type}\r\ncache-control: no-store\r\nconnection: close\r\n\r\n"
    )?;
    stream.flush()
}

/// Writes one event line in the negotiated framing: raw JSONL, or
/// `data: <line>\n\n` for SSE.
///
/// # Errors
///
/// Propagates socket write errors (a disconnected client surfaces here;
/// handlers treat that as the end of the stream).
pub fn write_event(stream: &mut impl Write, sse: bool, line: &str) -> std::io::Result<()> {
    if sse {
        write!(stream, "data: {line}\n\n")?;
    } else {
        writeln!(stream, "{line}")?;
    }
    stream.flush()
}

/// A thread-per-connection HTTP server around a request handler.
///
/// The handler receives the parsed request and the raw stream, so plain
/// endpoints use [`respond_json`] and streaming endpoints take over the
/// socket with [`start_stream`]/[`write_event`].
pub struct HttpServer {
    listener: TcpListener,
}

impl HttpServer {
    /// Binds the listener. `addr` may use port 0 to pick a free port;
    /// [`HttpServer::local_addr`] reports the resolved one.
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    pub fn bind(addr: impl ToSocketAddrs) -> std::io::Result<HttpServer> {
        Ok(HttpServer {
            listener: TcpListener::bind(addr)?,
        })
    }

    /// The bound address (useful with port 0).
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Accepts connections forever, one handler thread per connection.
    /// Parse failures get a 400; handler I/O errors are logged and drop
    /// the connection (a disconnected streaming client is normal).
    pub fn serve<F>(&self, handler: F) -> !
    where
        F: Fn(&HttpRequest, &mut TcpStream) -> std::io::Result<()> + Send + Sync + 'static,
    {
        let handler = Arc::new(handler);
        loop {
            let (stream, peer) = match self.listener.accept() {
                Ok(x) => x,
                Err(e) => {
                    eprintln!("[httpd] accept failed: {e}");
                    continue;
                }
            };
            let handler = Arc::clone(&handler);
            let spawned = std::thread::Builder::new()
                .name(format!("httpd-{peer}"))
                .spawn(move || handle_connection(&stream, handler.as_ref()));
            if let Err(e) = spawned {
                eprintln!("[httpd] spawn failed: {e}");
            }
        }
    }
}

fn handle_connection<F>(stream: &TcpStream, handler: &F)
where
    F: Fn(&HttpRequest, &mut TcpStream) -> std::io::Result<()>,
{
    let mut write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("[httpd] clone stream: {e}");
            return;
        }
    };
    let mut reader = BufReader::new(stream);
    match parse_request(&mut reader) {
        Ok(request) => {
            if let Err(e) = handler(&request, &mut write_half) {
                // Client hangups mid-stream are routine; anything else
                // is worth a log line.
                if e.kind() != std::io::ErrorKind::BrokenPipe
                    && e.kind() != std::io::ErrorKind::ConnectionReset
                {
                    eprintln!("[httpd] {} {}: {e}", request.method, request.path);
                }
            }
        }
        Err(msg) => {
            let _ = respond_error(&mut write_half, 400, &msg);
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(text: &str) -> Result<HttpRequest, String> {
        parse_request(&mut Cursor::new(text.as_bytes()))
    }

    #[test]
    fn parses_get_with_query() {
        let r = parse(
            "GET /jobs/3/events?from=2 HTTP/1.1\r\nHost: x\r\nAccept: text/event-stream\r\n\r\n",
        )
        .unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/jobs/3/events");
        assert_eq!(r.query, "from=2");
        assert_eq!(r.segments(), vec!["jobs", "3", "events"]);
        assert!(r.wants_sse());
        assert_eq!(r.header("host"), Some("x"));
        assert_eq!(r.header("HOST"), Some("x"));
    }

    #[test]
    fn parses_post_body_by_content_length() {
        let r = parse("POST /sweep HTTP/1.1\r\nContent-Length: 9\r\n\r\n{\"a\": 1}\n").unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.body, b"{\"a\": 1}\n");
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(parse("\r\n\r\n").is_err(), "empty request line");
        assert!(parse("GET\r\n\r\n").is_err(), "missing path");
        assert!(
            parse("GET / HTTP/1.1\r\nbadheader\r\n\r\n").is_err(),
            "header without colon"
        );
        assert!(
            parse("POST / HTTP/1.1\r\nContent-Length: nine\r\n\r\n").is_err(),
            "bad content-length"
        );
        assert!(
            parse("POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort").is_err(),
            "truncated body"
        );
    }

    #[test]
    fn responses_have_framing_headers() {
        let mut out = Vec::new();
        respond_json(&mut out, 200, &sim_core::Json::Bool(true)).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("content-length: 5"), "{text}");
        assert!(text.contains("connection: close"), "{text}");
        assert!(text.ends_with("true\n"), "{text}");
    }

    #[test]
    fn stream_framing_matches_negotiation() {
        let mut out = Vec::new();
        start_stream(&mut out, false).unwrap();
        write_event(&mut out, false, "{\"n\":1}").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("application/x-ndjson"), "{text}");
        assert!(text.ends_with("{\"n\":1}\n"), "{text}");

        let mut out = Vec::new();
        start_stream(&mut out, true).unwrap();
        write_event(&mut out, true, "{\"n\":1}").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("text/event-stream"), "{text}");
        assert!(text.ends_with("data: {\"n\":1}\n\n"), "{text}");
    }
}
