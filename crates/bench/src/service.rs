//! The sweep service: multi-client job scheduling on the persistent
//! result store.
//!
//! A [`SweepService`] accepts typed [`SweepRequest`]s (the same
//! schema-versioned document `run_all --config` reads), splits each into
//! its grid cells, and schedules the cells across a bounded worker pool
//! that reuses [`SweepPlan::run_fault_tolerant`] — so the retry/deadline
//! supervisor, fault injection and store dispositions of the batch path
//! apply unchanged to served sweeps.
//!
//! # Dedup and coalescing
//!
//! Every cell resolves through three layers, cheapest first:
//!
//! 1. **Store hit** — a cell already committed to the [`ResultStore`]
//!    under the same machine-config hash is answered immediately
//!    (disposition `hit`), across server restarts.
//! 2. **In-flight coalescing** — a cell another job is already running
//!    or has queued joins that cell's task as a subscriber
//!    (disposition `coalesced`); when the task completes, every
//!    subscribed job receives the same outcome. This extends the
//!    in-process `OnceMap` memoization of [`crate::lab::Lab`] to the
//!    job layer, where dispositions are observable per client.
//! 3. **Fresh work** — otherwise the cell becomes a new task on the
//!    queue (disposition `queued`).
//!
//! Duplicate work is therefore never simulated twice: concurrent clients
//! submitting overlapping grids share single simulations, and
//! [`SweepService::cells_simulated`] counts exactly the unique cells
//! that ran.
//!
//! # Job lifecycle and progress
//!
//! A submitted job immediately reports per-cell dispositions, then
//! streams one event per completed cell and a final `done` event.
//! Events are retained for the job's lifetime, so a late subscriber
//! (or a reconnecting client) replays the full history before tailing
//! live progress — see [`Job::wait_events`].
//!
//! The module is transport-agnostic: [`crate::httpd`] serves it over
//! HTTP, and the integration tests drive it in-process.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use sim_core::Json;

use crate::lab::Lab;
use crate::manifest::{config_hash, Manifest, RunOutcome};
use crate::request::SweepRequest;
use crate::store::{CellKey, ResultStore};
use crate::sweep::{RetryPolicy, SweepCell, SweepOptions, SweepPlan};

fn lock_recover<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// How a submitted cell was resolved at submit time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Served from the persistent result store without simulation.
    Hit,
    /// Joined another job's in-flight task for the same cell.
    Coalesced,
    /// Queued as fresh work.
    Queued,
}

impl Disposition {
    /// The label used in progress events and status JSON.
    pub fn label(self) -> &'static str {
        match self {
            Disposition::Hit => "hit",
            Disposition::Coalesced => "coalesced",
            Disposition::Queued => "queued",
        }
    }
}

/// Point-in-time summary of one job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobStatus {
    /// Job id (sequential, process-local).
    pub id: u64,
    /// Total cells in the job's grid.
    pub total: usize,
    /// Cells with an outcome (success or failure).
    pub completed: usize,
    /// Cells whose outcome is a failure record.
    pub failed: usize,
    /// Cells answered from the store at submit time.
    pub hits: usize,
    /// Cells that joined another job's in-flight task.
    pub coalesced: usize,
    /// Cells submitted as fresh work.
    pub queued: usize,
    /// True once every cell has an outcome.
    pub done: bool,
}

impl JobStatus {
    /// JSON form for the status endpoint.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("id", Json::Num(self.id as f64)),
            ("total", Json::Num(self.total as f64)),
            ("completed", Json::Num(self.completed as f64)),
            ("failed", Json::Num(self.failed as f64)),
            ("hit", Json::Num(self.hits as f64)),
            ("coalesced", Json::Num(self.coalesced as f64)),
            ("queued", Json::Num(self.queued as f64)),
            ("done", Json::Bool(self.done)),
        ])
    }
}

struct JobState {
    /// One slot per plan cell, filled as outcomes arrive.
    outcomes: Vec<Option<RunOutcome>>,
    /// Submit-time disposition per cell.
    dispositions: Vec<Disposition>,
    /// Retained JSONL event lines (compact JSON, no newline).
    events: Vec<String>,
    completed: usize,
    failed: usize,
}

/// One submitted sweep: its grid, its progress events, and its
/// accumulating outcomes.
pub struct Job {
    id: u64,
    request: SweepRequest,
    cells: Vec<SweepCell>,
    state: Mutex<JobState>,
    cv: Condvar,
}

impl Job {
    fn new(id: u64, request: SweepRequest) -> Arc<Job> {
        let cells = request.plan(format!("job{id}")).cells;
        let n = cells.len();
        Arc::new(Job {
            id,
            request,
            cells,
            state: Mutex::new(JobState {
                outcomes: vec![None; n],
                dispositions: Vec::with_capacity(n),
                events: Vec::new(),
                completed: 0,
                failed: 0,
            }),
            cv: Condvar::new(),
        })
    }

    /// Job id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The request this job was submitted with.
    pub fn request(&self) -> &SweepRequest {
        &self.request
    }

    /// Current status snapshot.
    pub fn status(&self) -> JobStatus {
        let s = lock_recover(&self.state);
        let count = |d: Disposition| s.dispositions.iter().filter(|&&x| x == d).count();
        JobStatus {
            id: self.id,
            total: self.cells.len(),
            completed: s.completed,
            failed: s.failed,
            hits: count(Disposition::Hit),
            coalesced: count(Disposition::Coalesced),
            queued: count(Disposition::Queued),
            done: s.completed == self.cells.len(),
        }
    }

    /// True once every cell has an outcome.
    pub fn is_done(&self) -> bool {
        let s = lock_recover(&self.state);
        s.completed == self.cells.len()
    }

    /// Blocks until the job has events past `from` or is done (or the
    /// timeout elapses), then returns the new event lines (compact JSON,
    /// one per element) and whether the job is done. Start at `from = 0`
    /// to replay the full history.
    pub fn wait_events(&self, from: usize, timeout: Duration) -> (Vec<String>, bool) {
        let mut s = lock_recover(&self.state);
        if s.events.len() <= from && s.completed < self.cells.len() {
            let (guard, _) = self
                .cv
                .wait_timeout(s, timeout)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            s = guard;
        }
        let lines = s.events.get(from..).unwrap_or_default().to_vec();
        (lines, s.completed == self.cells.len())
    }

    /// The manifest of a completed job: every outcome in plan order.
    /// `None` while any cell is still outstanding.
    pub fn manifest(&self) -> Option<Manifest> {
        let s = lock_recover(&self.state);
        if s.completed < self.cells.len() {
            return None;
        }
        Some(Manifest {
            name: format!("job{}", self.id),
            records: s.outcomes.iter().flatten().cloned().collect(),
        })
    }

    fn push_event(s: &mut JobState, event: &Json) {
        s.events.push(event.to_string_compact());
    }

    fn record_disposition(&self, disposition: Disposition) {
        let mut s = lock_recover(&self.state);
        s.dispositions.push(disposition);
    }

    /// Stores one cell's outcome and emits its progress event.
    fn deliver(&self, index: usize, outcome: RunOutcome) {
        let cell = &self.cells[index];
        let mut s = lock_recover(&self.state);
        if s.outcomes[index].is_some() {
            return; // already delivered (defensive; tasks deliver once)
        }
        let ok = !outcome.is_failed();
        s.completed += 1;
        if !ok {
            s.failed += 1;
        }
        let disposition = s
            .dispositions
            .get(index)
            .copied()
            .unwrap_or(Disposition::Queued);
        s.outcomes[index] = Some(outcome);
        let event = Json::obj([
            ("event", Json::Str("cell".to_string())),
            ("job", Json::Num(self.id as f64)),
            ("index", Json::Num(index as f64)),
            ("workload", Json::Str(cell.workload.clone())),
            ("input", Json::Str(cell.input_label())),
            ("system", Json::Str(cell.system.label().to_string())),
            ("disposition", Json::Str(disposition.label().to_string())),
            ("ok", Json::Bool(ok)),
        ]);
        Self::push_event(&mut s, &event);
        if s.completed == self.cells.len() {
            let done = Json::obj([
                ("event", Json::Str("done".to_string())),
                ("job", Json::Num(self.id as f64)),
                ("completed", Json::Num(s.completed as f64)),
                ("failed", Json::Num(s.failed as f64)),
            ]);
            Self::push_event(&mut s, &done);
        }
        drop(s);
        self.cv.notify_all();
    }

    fn announce(&self, status: &JobStatus) {
        let mut s = lock_recover(&self.state);
        let event = Json::obj([
            ("event", Json::Str("submitted".to_string())),
            ("job", Json::Num(self.id as f64)),
            ("cells", Json::Num(status.total as f64)),
            ("hit", Json::Num(status.hits as f64)),
            ("coalesced", Json::Num(status.coalesced as f64)),
            ("queued", Json::Num(status.queued as f64)),
        ]);
        // The announcement goes first, before any hit-cell events that
        // were delivered during submission.
        s.events.insert(0, event.to_string_compact());
        drop(s);
        self.cv.notify_all();
    }
}

struct TaskState {
    result: Option<RunOutcome>,
    /// Jobs waiting on this cell, with the cell's index in each job.
    subscribers: Vec<(Arc<Job>, usize)>,
}

/// One unique in-flight cell, shared by every job that submitted it.
struct CellTask {
    cell: SweepCell,
    retry: RetryPolicy,
    state: Mutex<TaskState>,
}

impl CellTask {
    /// Adds a subscriber; delivers immediately if the result is already
    /// in (the subscribe/complete race resolves under the state lock).
    fn subscribe(&self, job: &Arc<Job>, index: usize) {
        let mut s = lock_recover(&self.state);
        if let Some(outcome) = &s.result {
            let outcome = outcome.clone();
            drop(s);
            job.deliver(index, outcome);
        } else {
            s.subscribers.push((Arc::clone(job), index));
        }
    }

    /// Publishes the outcome and drains the subscriber list.
    fn complete(&self, outcome: &RunOutcome) {
        let subscribers = {
            let mut s = lock_recover(&self.state);
            s.result = Some(outcome.clone());
            std::mem::take(&mut s.subscribers)
        };
        for (job, index) in subscribers {
            job.deliver(index, outcome.clone());
        }
    }
}

struct ServiceShared {
    lab: Lab,
    store: Option<Arc<ResultStore>>,
    jobs: Mutex<HashMap<u64, Arc<Job>>>,
    inflight: Mutex<HashMap<CellKey, Arc<CellTask>>>,
    queue: Mutex<VecDeque<Arc<CellTask>>>,
    queue_cv: Condvar,
    next_job_id: AtomicU64,
    cells_simulated: AtomicUsize,
    shutdown: AtomicBool,
}

/// The sweep scheduler: a worker pool, a job table, and the job-level
/// in-flight map that coalesces overlapping submissions. See the module
/// docs for the dedup semantics.
pub struct SweepService {
    shared: Arc<ServiceShared>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl SweepService {
    /// Starts a service with `workers` pool threads, sharing one [`Lab`]
    /// (so traces and profiles memoize across jobs) and optionally one
    /// persistent result store.
    pub fn start(store: Option<Arc<ResultStore>>, workers: usize) -> SweepService {
        let shared = Arc::new(ServiceShared {
            lab: Lab::new(),
            store,
            jobs: Mutex::new(HashMap::new()),
            inflight: Mutex::new(HashMap::new()),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            next_job_id: AtomicU64::new(1),
            cells_simulated: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("sweep-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn sweep worker")
            })
            .collect();
        SweepService {
            shared,
            workers: Mutex::new(handles),
        }
    }

    /// Submits a sweep request: every grid cell resolves to a store hit,
    /// an in-flight coalesce, or fresh queued work (see the module
    /// docs), and the returned job streams progress as cells finish.
    ///
    /// # Errors
    ///
    /// Returns a one-line message for an invalid request or a service
    /// that is shutting down.
    pub fn submit(&self, request: SweepRequest) -> Result<Arc<Job>, String> {
        if self.shared.shutdown.load(Ordering::SeqCst) {
            return Err("service is shutting down".to_string());
        }
        let request = request.validated()?;
        let id = self.shared.next_job_id.fetch_add(1, Ordering::SeqCst);
        let job = Job::new(id, request);
        self.shared
            .jobs
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(id, Arc::clone(&job));

        let cfg = config_hash();
        let retry = job.request.retry;
        for (index, cell) in job.cells.clone().into_iter().enumerate() {
            // Layer 1: the persistent store answers immediately.
            let stored = self.shared.store.as_ref().and_then(|s| {
                s.get(
                    &cell.workload,
                    &cell.input_label(),
                    cell.system.label(),
                    cfg,
                )
            });
            if let Some(mut record) = stored {
                record.store = Some("hit".to_string());
                job.record_disposition(Disposition::Hit);
                job.deliver(index, RunOutcome::Success(record));
                continue;
            }
            // Layers 2/3: join the in-flight task or queue fresh work.
            let key = CellKey {
                workload: cell.workload.clone(),
                input: cell.input_label(),
                system: cell.system.label().to_string(),
                config_hash: cfg,
            };
            let (task, fresh) = {
                let mut inflight = lock_recover(&self.shared.inflight);
                match inflight.get(&key) {
                    Some(task) => (Arc::clone(task), false),
                    None => {
                        let task = Arc::new(CellTask {
                            cell: cell.clone(),
                            retry,
                            state: Mutex::new(TaskState {
                                result: None,
                                subscribers: Vec::new(),
                            }),
                        });
                        inflight.insert(key, Arc::clone(&task));
                        (task, true)
                    }
                }
            };
            job.record_disposition(if fresh {
                Disposition::Queued
            } else {
                Disposition::Coalesced
            });
            task.subscribe(&job, index);
            if fresh {
                lock_recover(&self.shared.queue).push_back(task);
                self.shared.queue_cv.notify_one();
            }
        }
        job.announce(&job.status());
        Ok(job)
    }

    /// The job with this id, if it exists.
    pub fn job(&self, id: u64) -> Option<Arc<Job>> {
        lock_recover(&self.shared.jobs).get(&id).cloned()
    }

    /// The committed record for one cell, straight from the store.
    pub fn stored_cell(
        &self,
        workload: &str,
        input: &str,
        system: &str,
        config_hash: u64,
    ) -> Option<crate::manifest::RunRecord> {
        self.shared
            .store
            .as_ref()?
            .get(workload, input, system, config_hash)
    }

    /// Unique cells actually simulated by this service (store hits and
    /// coalesced submissions excluded) — the number the concurrent-client
    /// test pins to the union grid size.
    pub fn cells_simulated(&self) -> usize {
        self.shared.cells_simulated.load(Ordering::SeqCst)
    }

    /// Health/status document: store status (recovery, quarantine,
    /// degradation) plus scheduler counters.
    pub fn status_json(&self) -> Json {
        let jobs = lock_recover(&self.shared.jobs);
        let inflight = lock_recover(&self.shared.inflight);
        Json::obj([
            ("status", Json::Str("ok".to_string())),
            (
                "schema_version",
                Json::Num(f64::from(crate::request::REQUEST_SCHEMA_VERSION)),
            ),
            ("jobs", Json::Num(jobs.len() as f64)),
            ("inflight", Json::Num(inflight.len() as f64)),
            ("cells_simulated", Json::Num(self.cells_simulated() as f64)),
            ("config_hash", Json::Str(format!("{:016x}", config_hash()))),
            (
                "store",
                match &self.shared.store {
                    Some(store) => store.status_json(),
                    None => Json::Null,
                },
            ),
        ])
    }

    /// The service's result store, if configured.
    pub fn store(&self) -> Option<&Arc<ResultStore>> {
        self.shared.store.as_ref()
    }

    /// Stops the worker pool after in-progress cells finish. Queued but
    /// unstarted tasks are abandoned (their subscribers never complete),
    /// so this is for tests and process teardown, not graceful draining.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.queue_cv.notify_all();
        let handles = std::mem::take(&mut *lock_recover(&self.workers));
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for SweepService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One pool thread: pop a unique cell task, run it through the
/// fault-tolerant executor (store check, retry supervisor and store
/// append included), publish to all subscribed jobs, and retire the
/// in-flight entry.
fn worker_loop(shared: &Arc<ServiceShared>) {
    loop {
        let task = {
            let mut queue = lock_recover(&shared.queue);
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(task) = queue.pop_front() {
                    break task;
                }
                queue = shared
                    .queue_cv
                    .wait_timeout(queue, Duration::from_millis(200))
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .0;
            }
        };
        let plan = SweepPlan {
            name: format!(
                "cell-{}-{}-{}",
                task.cell.workload,
                task.cell.input_label(),
                task.cell.system.label()
            ),
            cells: vec![task.cell.clone()],
        };
        let opts = SweepOptions {
            store: shared.store.as_deref(),
            retry: task.retry,
            ..SweepOptions::default()
        };
        let exec = plan.run_fault_tolerant(&shared.lab, 1, &opts);
        shared.cells_simulated.fetch_add(exec.ran, Ordering::SeqCst);
        let outcome = exec
            .outcomes
            .into_iter()
            .next()
            .expect("single-cell plan produced one outcome");
        // Retire the in-flight entry *before* publishing: a submitter
        // arriving between these two steps creates a fresh task and
        // takes a store hit inside run_fault_tolerant instead of
        // re-simulating; one arriving earlier holds this task and gets
        // the immediate-delivery path in subscribe().
        {
            let mut inflight = lock_recover(&shared.inflight);
            inflight.retain(|_, t| !Arc::ptr_eq(t, &task));
        }
        task.complete(&outcome);
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use ecdp::system::SystemKind;
    use workloads::InputSet;

    fn tiny_request() -> SweepRequest {
        SweepRequest::default()
            .with_workloads(&["mst"])
            .with_input(InputSet::Test)
            .with_systems(&[SystemKind::StreamOnly])
    }

    fn wait_done(job: &Arc<Job>) {
        let mut from = 0;
        for _ in 0..600 {
            let (lines, done) = job.wait_events(from, Duration::from_millis(100));
            from += lines.len();
            if done {
                return;
            }
        }
        panic!("job {} did not finish", job.id());
    }

    #[test]
    fn submit_runs_and_streams_events() {
        let svc = SweepService::start(None, 2);
        let job = svc.submit(tiny_request()).unwrap();
        wait_done(&job);
        let (lines, done) = job.wait_events(0, Duration::from_millis(10));
        assert!(done);
        assert!(lines[0].contains("\"submitted\""), "{lines:?}");
        assert!(lines.iter().any(|l| l.contains("\"cell\"")), "{lines:?}");
        assert!(lines.last().unwrap().contains("\"done\""), "{lines:?}");
        let status = job.status();
        assert_eq!(status.completed, 1);
        assert_eq!(status.failed, 0);
        assert!(status.done);
        let manifest = job.manifest().unwrap();
        assert_eq!(manifest.records.len(), 1);
        assert_eq!(svc.cells_simulated(), 1);
    }

    #[test]
    fn identical_jobs_coalesce_or_memoize() {
        let svc = SweepService::start(None, 2);
        let a = svc.submit(tiny_request()).unwrap();
        let b = svc.submit(tiny_request()).unwrap();
        wait_done(&a);
        wait_done(&b);
        // The lab memoizes within the process even when the second
        // submission missed the in-flight window, so exactly one
        // simulation ran end to end.
        let sb = b.status();
        assert_eq!(sb.completed, 1);
        assert!(sb.hits + sb.coalesced + sb.queued == 1);
        let ra = a.manifest().unwrap().records;
        let rb = b.manifest().unwrap().records;
        let (RunOutcome::Success(ra), RunOutcome::Success(rb)) = (&ra[0], &rb[0]) else {
            panic!("both jobs succeed");
        };
        assert!(ra.same_metrics(rb));
    }

    #[test]
    fn store_hits_answer_without_simulation() {
        let dir = std::env::temp_dir().join(format!("svc-store-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("results.store");
        let _ = std::fs::remove_file(&path);
        {
            let svc = SweepService::start(Some(Arc::new(ResultStore::open(&path))), 2);
            let job = svc.submit(tiny_request()).unwrap();
            wait_done(&job);
            assert_eq!(svc.cells_simulated(), 1);
        }
        // Fresh service, same store: pure hit, zero simulations.
        let svc = SweepService::start(Some(Arc::new(ResultStore::open(&path))), 2);
        let job = svc.submit(tiny_request()).unwrap();
        wait_done(&job);
        let status = job.status();
        assert_eq!(status.hits, 1);
        assert_eq!(svc.cells_simulated(), 0);
        let records = job.manifest().unwrap().records;
        let RunOutcome::Success(r) = &records[0] else {
            panic!("stored cell is a success");
        };
        assert_eq!(r.store.as_deref(), Some("hit"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn status_json_reports_scheduler_and_store() {
        let svc = SweepService::start(None, 1);
        let j = svc.status_json();
        assert_eq!(j.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(j.get("store"), Some(&Json::Null));
        assert!(j.get("config_hash").is_some());
    }

    #[test]
    fn invalid_requests_are_rejected() {
        let svc = SweepService::start(None, 1);
        let bad = SweepRequest::default().with_workloads(&["no-such-workload"]);
        assert!(svc.submit(bad).is_err());
    }
}
