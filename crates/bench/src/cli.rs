//! Strict command-line parsing for the `run_all` binary.
//!
//! Hand-rolled (the workspace takes no external dependencies) but
//! deliberately unforgiving: unknown flags, missing or malformed flag
//! values and duplicate positionals are hard errors with a usage
//! message, instead of being silently reinterpreted as an output path.

/// Usage line printed on `--help` and on every parse error.
pub const USAGE: &str = "usage: run_all [--config FILE] [--workload-file FILE]... [--jobs N]
               [--filter SUBSTR] [--resume] [--sweep] [--bench] [--validate]
               [--no-skip] [--warm-fork] [--trace-dir DIR] [--store PATH]
               [output.md]

  --config FILE   load a SweepRequest JSON document (the same schema sweepd
                  accepts over HTTP). Precedence: flags override the file,
                  the file overrides the environment; a field set by both
                  the file and a BENCH_* variable to different values is a
                  usage error naming both sources
  --workload-file FILE
                  register a workload file before the grid is built:
                  .wl (workload DSL spec), .trace (text trace) or .xtrc
                  (binary streamed trace). Repeatable. Without an explicit
                  workload list, the grid is exactly the workloads these
                  files define
  --jobs N        worker threads (default: $BENCH_JOBS or available parallelism)
  --filter SUBSTR only generate report sections whose name contains SUBSTR;
                  with --sweep, keep only sweep cells matching SUBSTR
  --resume        skip sweep cells already recorded as successful in the
                  existing run_all manifest (same machine-config hash)
  --store PATH    persistent result store: serve sweep cells committed under
                  the same machine-config hash without re-simulation, append
                  fresh results, and write PATH.report.json with the
                  recovery/heal status (default: $BENCH_RESULT_STORE; retry
                  knobs: $BENCH_RETRY_ATTEMPTS, $BENCH_RETRY_BACKOFF_MS,
                  $BENCH_CELL_DEADLINE_MS; set $BENCH_STORE_COMPACT=1 to
                  compact the log after the sweep)
  --sweep         run only the sweep phase (no report sections)
  --bench         time the engine hot path over the sweep grid and write
                  BENCH_hotpath.json (or the positional output path); with
                  $BENCH_BASELINE set to a prior report, exit 1 when
                  cells/sec regresses more than 20%
  --validate      run the paper-conformance suite over the sweep grid and
                  write VALIDATE_report.json (or the positional output
                  path); exit 2 when any property is violated
  --no-skip       with --bench: run the cycle-by-cycle reference stepper
                  instead of the event-skipping engine (for comparison)
  --warm-fork     with --bench: time only the portion of each cell after
                  a warm checkpoint at 70% of its cycles (the per-variant
                  cost of a sweep row with checkpoints on disk)
  --trace-dir DIR run sweep cells with the observability layer enabled and
                  write per-cell timeseries.json + obs.jsonl under DIR
  output.md       report path (default: EXPERIMENTS.md)";

/// Parsed `run_all` arguments.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RunAllArgs {
    /// Path of a `SweepRequest` JSON document to layer under the flags.
    pub config: Option<String>,
    /// Workload files (`.wl`/`.trace`/`.xtrc`) to register, in order.
    pub workload_files: Vec<String>,
    /// Worker threads; `None` means use [`crate::default_jobs`].
    pub jobs: Option<usize>,
    /// Lower-cased section filter.
    pub filter: Option<String>,
    /// Skip sweep cells with a prior successful record.
    pub resume: bool,
    /// Run only the sweep phase.
    pub sweep_only: bool,
    /// Run the hot-path throughput benchmark instead of the report.
    pub bench: bool,
    /// Run the paper-conformance suite instead of the report.
    pub validate: bool,
    /// With `bench`: disable event skip-ahead (reference stepper).
    pub no_skip: bool,
    /// With `bench`: time only the warm-forked tail of each cell.
    pub warm_fork: bool,
    /// Directory for per-cell observability artifacts; enables tracing.
    pub trace_dir: Option<String>,
    /// Persistent result-store path; `None` falls back to
    /// `$BENCH_RESULT_STORE`, and an empty environment disables it.
    pub store: Option<String>,
    /// Report output path; `None` means `EXPERIMENTS.md`.
    pub out_path: Option<String>,
}

/// Outcome of parsing: a run request or an explicit help request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Parsed {
    /// Arguments parsed successfully.
    Run(RunAllArgs),
    /// `--help`/`-h` was given.
    Help,
}

/// Parses the arguments after the program name.
///
/// # Errors
///
/// Returns a one-line description for unknown flags, missing or
/// non-numeric flag values, and more than one positional argument.
pub fn parse_args<I>(args: I) -> Result<Parsed, String>
where
    I: IntoIterator<Item = String>,
{
    let mut parsed = RunAllArgs::default();
    let mut args = args.into_iter();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--config" => {
                let v = args.next().ok_or("--config requires a value")?;
                if v.is_empty() {
                    return Err("--config value must be non-empty".to_string());
                }
                parsed.config = Some(v);
            }
            "--workload-file" => {
                let v = args.next().ok_or("--workload-file requires a value")?;
                if v.is_empty() {
                    return Err("--workload-file value must be non-empty".to_string());
                }
                parsed.workload_files.push(v);
            }
            "--jobs" => {
                let v = args.next().ok_or("--jobs requires a value")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--jobs value {v:?} is not an integer"))?;
                if n == 0 {
                    return Err("--jobs must be at least 1".to_string());
                }
                parsed.jobs = Some(n);
            }
            "--filter" => {
                let v = args.next().ok_or("--filter requires a value")?;
                if v.is_empty() {
                    return Err("--filter value must be non-empty".to_string());
                }
                parsed.filter = Some(v.to_lowercase());
            }
            "--resume" => parsed.resume = true,
            "--sweep" => parsed.sweep_only = true,
            "--bench" => parsed.bench = true,
            "--validate" => parsed.validate = true,
            "--no-skip" => parsed.no_skip = true,
            "--warm-fork" => parsed.warm_fork = true,
            "--trace-dir" => {
                let v = args.next().ok_or("--trace-dir requires a value")?;
                if v.is_empty() {
                    return Err("--trace-dir value must be non-empty".to_string());
                }
                parsed.trace_dir = Some(v);
            }
            "--store" => {
                let v = args.next().ok_or("--store requires a value")?;
                if v.is_empty() {
                    return Err("--store value must be non-empty".to_string());
                }
                parsed.store = Some(v);
            }
            "--help" | "-h" => return Ok(Parsed::Help),
            _ if a.starts_with('-') => return Err(format!("unknown flag {a:?}")),
            _ => {
                if let Some(prev) = &parsed.out_path {
                    return Err(format!(
                        "unexpected extra positional argument {a:?} (output path is already {prev:?})"
                    ));
                }
                parsed.out_path = Some(a);
            }
        }
    }
    if parsed.no_skip && !parsed.bench {
        return Err("--no-skip only makes sense with --bench".to_string());
    }
    if parsed.warm_fork && !parsed.bench {
        return Err("--warm-fork only makes sense with --bench".to_string());
    }
    if parsed.validate && (parsed.bench || parsed.sweep_only) {
        return Err("--validate cannot be combined with --bench or --sweep".to_string());
    }
    Ok(Parsed::Run(parsed))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Parsed, String> {
        parse_args(args.iter().map(ToString::to_string))
    }

    #[test]
    fn parses_the_full_flag_set() {
        let p = parse(&[
            "--jobs",
            "4",
            "--filter",
            "Figure",
            "--resume",
            "--sweep",
            "--trace-dir",
            "target/traces",
            "out.md",
        ]);
        assert_eq!(
            p,
            Ok(Parsed::Run(RunAllArgs {
                jobs: Some(4),
                filter: Some("figure".to_string()),
                resume: true,
                sweep_only: true,
                trace_dir: Some("target/traces".to_string()),
                out_path: Some("out.md".to_string()),
                ..RunAllArgs::default()
            }))
        );
        assert_eq!(parse(&[]), Ok(Parsed::Run(RunAllArgs::default())));
        assert_eq!(parse(&["--help"]), Ok(Parsed::Help));
        assert_eq!(parse(&["-h"]), Ok(Parsed::Help));
    }

    #[test]
    fn parses_config_flag() {
        let p = parse(&["--config", "req.json", "--jobs", "2"]);
        assert_eq!(
            p,
            Ok(Parsed::Run(RunAllArgs {
                config: Some("req.json".to_string()),
                jobs: Some(2),
                ..RunAllArgs::default()
            }))
        );
        assert!(parse(&["--config"]).is_err(), "missing value");
        assert!(parse(&["--config", ""]).is_err(), "empty value");
    }

    #[test]
    fn parses_repeatable_workload_file_flag() {
        let p = parse(&["--workload-file", "a.wl", "--workload-file", "b.xtrc"]);
        assert_eq!(
            p,
            Ok(Parsed::Run(RunAllArgs {
                workload_files: vec!["a.wl".to_string(), "b.xtrc".to_string()],
                ..RunAllArgs::default()
            }))
        );
        assert!(parse(&["--workload-file"]).is_err(), "missing value");
        assert!(parse(&["--workload-file", ""]).is_err(), "empty value");
    }

    #[test]
    fn rejects_malformed_jobs() {
        assert!(parse(&["--jobs"]).is_err(), "missing value");
        assert!(parse(&["--jobs", "many"]).is_err(), "non-numeric");
        assert!(parse(&["--jobs", "0"]).is_err(), "zero workers");
        assert!(parse(&["--jobs", "-3"]).is_err(), "negative");
    }

    #[test]
    fn parses_store_flag() {
        let p = parse(&["--store", "target/results.store", "--resume"]);
        assert_eq!(
            p,
            Ok(Parsed::Run(RunAllArgs {
                store: Some("target/results.store".to_string()),
                resume: true,
                ..RunAllArgs::default()
            }))
        );
        assert!(parse(&["--store"]).is_err(), "missing value");
        assert!(parse(&["--store", ""]).is_err(), "empty value");
    }

    #[test]
    fn rejects_malformed_filter_and_unknown_flags() {
        assert!(parse(&["--filter"]).is_err(), "missing value");
        assert!(parse(&["--filter", ""]).is_err(), "empty value");
        assert!(parse(&["--trace-dir"]).is_err(), "missing value");
        assert!(parse(&["--trace-dir", ""]).is_err(), "empty value");
        assert!(parse(&["--jbos", "4"]).is_err(), "unknown flag");
        assert!(parse(&["--resume=now"]).is_err(), "unknown flag form");
    }

    #[test]
    fn rejects_extra_positionals() {
        assert!(parse(&["a.md", "b.md"]).is_err());
    }

    #[test]
    fn parses_bench_flags() {
        let p = parse(&["--bench", "--no-skip", "out.json"]);
        assert_eq!(
            p,
            Ok(Parsed::Run(RunAllArgs {
                bench: true,
                no_skip: true,
                out_path: Some("out.json".to_string()),
                ..RunAllArgs::default()
            }))
        );
        assert!(parse(&["--no-skip"]).is_err(), "--no-skip requires --bench");
    }

    #[test]
    fn parses_warm_fork_flag() {
        let p = parse(&["--bench", "--warm-fork"]);
        assert_eq!(
            p,
            Ok(Parsed::Run(RunAllArgs {
                bench: true,
                warm_fork: true,
                ..RunAllArgs::default()
            }))
        );
        assert!(
            parse(&["--warm-fork"]).is_err(),
            "--warm-fork requires --bench"
        );
    }

    #[test]
    fn parses_validate_flag() {
        let p = parse(&["--validate", "report.json"]);
        assert_eq!(
            p,
            Ok(Parsed::Run(RunAllArgs {
                validate: true,
                out_path: Some("report.json".to_string()),
                ..RunAllArgs::default()
            }))
        );
        assert!(parse(&["--validate", "--bench"]).is_err(), "exclusive");
        assert!(parse(&["--validate", "--sweep"]).is_err(), "exclusive");
        assert!(
            parse(&["--validate", "--jobs", "2"]).is_ok(),
            "--jobs composes"
        );
    }
}
