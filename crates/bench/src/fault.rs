//! Deterministic fault injection for the sweep harness.
//!
//! A [`FaultPlan`] maps sweep cells — (workload, input, system) triples —
//! to injected failures: a panic, a genuine simulator livelock (driven
//! through the real engine watchdog), or an artificial slowdown. Plans
//! are parsed from the `BENCH_FAULT_PLAN` environment variable, so the
//! integration tests can exercise the failure paths of the *real*
//! `run_all` binary without patching any experiment code.
//!
//! Plan syntax (entries separated by `;`):
//!
//! ```text
//! action@workload:input:system[=ms]
//! ```
//!
//! * `action` is `panic`, `livelock`, `slow` or `corrupt-checkpoint`
//!   (only `slow` takes `=ms`);
//! * `workload` is a workload name, `input` is `train`/`ref`/`test`,
//!   `system` is a system label (`SystemKind::label`);
//! * any of the three selectors may be `*` to match everything.
//!
//! Example: `panic@mst:test:stream+cdp;livelock@health:test:stream`.

use ecdp::system::SystemKind;
use sim_core::{Machine, MachineConfig, OpKind, SimError, Trace, TraceOp};
use sim_mem::{layout, SimMemory};
use workloads::InputSet;

/// The failure to inject into a matched cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic inside the cell's compute closure.
    Panic,
    /// Run a trace with circular address dependences through the real
    /// engine so the watchdog reports [`SimError::Deadlock`].
    Livelock,
    /// Sleep this many milliseconds before the real run (scheduling
    /// jitter for the executor tests).
    Slow(u64),
    /// Flip a byte of the cell's on-disk warm checkpoint before it is
    /// parsed, so the snapshot CRC check rejects it and the lab's
    /// cold-run fallback path runs for real.
    CorruptCheckpoint,
}

/// One `action@workload:input:system` entry of a plan.
#[derive(Debug, Clone, PartialEq, Eq)]
struct FaultRule {
    workload: String,
    input: String,
    system: String,
    action: FaultAction,
}

fn matches(selector: &str, value: &str) -> bool {
    selector == "*" || selector == value
}

/// A set of fault-injection rules; empty means "no faults".
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// The empty plan: nothing is injected.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Adds a rule; selectors may be `*`.
    pub fn push(&mut self, action: FaultAction, workload: &str, input: &str, system: &str) {
        self.rules.push(FaultRule {
            workload: workload.to_string(),
            input: input.to_string(),
            system: system.to_string(),
            action,
        });
    }

    /// Parses the plan syntax described in the module docs.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for malformed entries; an empty
    /// or whitespace-only string parses to the empty plan.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::none();
        for entry in text.split(';').map(str::trim).filter(|e| !e.is_empty()) {
            let (action_text, cell) = entry
                .split_once('@')
                .ok_or_else(|| format!("fault entry {entry:?} is missing '@'"))?;
            let (cell, ms) = match cell.split_once('=') {
                Some((c, ms)) => (
                    c,
                    Some(ms.parse::<u64>().map_err(|_| {
                        format!("fault entry {entry:?} has a non-numeric duration {ms:?}")
                    })?),
                ),
                None => (cell, None),
            };
            let mut parts = cell.split(':');
            let (workload, input, system) = match (parts.next(), parts.next(), parts.next()) {
                (Some(w), Some(i), Some(s)) if parts.next().is_none() => (w, i, s),
                _ => {
                    return Err(format!(
                        "fault entry {entry:?} must target workload:input:system"
                    ))
                }
            };
            let action = match (action_text, ms) {
                ("panic", None) => FaultAction::Panic,
                ("livelock", None) => FaultAction::Livelock,
                ("slow", Some(ms)) => FaultAction::Slow(ms),
                ("slow", None) => {
                    return Err(format!("fault entry {entry:?} needs '=<ms>' for slow"))
                }
                ("corrupt-checkpoint", None) => FaultAction::CorruptCheckpoint,
                ("corrupt-checkpoint", Some(_)) => {
                    return Err(format!("fault entry {entry:?} takes no duration"))
                }
                (other, _) => return Err(format!("unknown fault action {other:?} in {entry:?}")),
            };
            plan.push(action, workload, input, system);
        }
        Ok(plan)
    }

    /// The plan configured via `BENCH_FAULT_PLAN`, or the empty plan.
    ///
    /// # Panics
    ///
    /// Panics on a malformed plan — a misspelled injection silently
    /// testing nothing is worse than failing fast.
    pub fn from_env() -> Self {
        match std::env::var("BENCH_FAULT_PLAN") {
            Ok(text) => {
                FaultPlan::parse(&text).unwrap_or_else(|e| panic!("invalid BENCH_FAULT_PLAN: {e}"))
            }
            Err(_) => FaultPlan::none(),
        }
    }

    /// The first matching action for a cell, if any.
    pub fn action_for(
        &self,
        workload: &str,
        input: InputSet,
        system: SystemKind,
    ) -> Option<FaultAction> {
        let input = format!("{input:?}").to_lowercase();
        self.rules
            .iter()
            .find(|r| {
                matches(&r.workload, workload)
                    && matches(&r.input, &input)
                    && matches(&r.system, system.label())
            })
            .map(|r| r.action)
    }
}

/// Runs a two-op trace with circular address dependences through the real
/// engine and returns the watchdog's [`SimError::Deadlock`].
///
/// This is the injection vehicle for [`FaultAction::Livelock`]: the error
/// comes from the same detection path a genuine wedge would take, so the
/// harness tests cover snapshot capture and error propagation end-to-end.
///
/// # Panics
///
/// Panics if the engine fails to report the deadlock (itself a bug).
pub fn run_livelock() -> SimError {
    let op = |dep: u32| TraceOp {
        pc: 0x400,
        addr: layout::HEAP_BASE,
        value: 0,
        dep,
        kind: OpKind::Load,
        lds: false,
    };
    let trace = Trace {
        initial_memory: SimMemory::new(),
        ops: vec![op(1), op(0)],
        instructions: 2,
    };
    let mut machine = Machine::new(MachineConfig::default());
    match machine.run(&trace) {
        Err(e) => e,
        Ok(_) => unreachable!("circular address dependences cannot complete"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_mixed_plan() {
        let plan =
            FaultPlan::parse("panic@mst:test:stream+cdp; livelock@health:*:stream ;slow@*:*:*=7")
                .expect("valid plan");
        assert_eq!(
            plan.action_for("mst", InputSet::Test, SystemKind::StreamCdp),
            Some(FaultAction::Panic)
        );
        assert_eq!(
            plan.action_for("health", InputSet::Ref, SystemKind::StreamOnly),
            Some(FaultAction::Livelock)
        );
        // First match wins; the wildcard slow rule catches the rest.
        assert_eq!(
            plan.action_for("em3d", InputSet::Train, SystemKind::GhbAlone),
            Some(FaultAction::Slow(7))
        );
    }

    #[test]
    fn empty_and_invalid_plans() {
        assert!(FaultPlan::parse("").expect("empty ok").is_empty());
        assert!(FaultPlan::parse("  ;  ").expect("blank ok").is_empty());
        assert!(FaultPlan::parse("panic@mst:test").is_err());
        assert!(FaultPlan::parse("explode@a:b:c").is_err());
        assert!(FaultPlan::parse("slow@a:b:c").is_err());
        assert!(FaultPlan::parse("slow@a:b:c=fast").is_err());
        assert!(FaultPlan::parse("panic mst").is_err());
        assert!(FaultPlan::parse("corrupt-checkpoint@a:b:c=3").is_err());
        assert_eq!(
            FaultPlan::parse("corrupt-checkpoint@mst:test:stream")
                .expect("valid")
                .action_for("mst", InputSet::Test, SystemKind::StreamOnly),
            Some(FaultAction::CorruptCheckpoint)
        );
    }

    #[test]
    fn unmatched_cells_get_no_action() {
        let plan = FaultPlan::parse("panic@mst:test:stream").expect("valid");
        assert_eq!(
            plan.action_for("mst", InputSet::Ref, SystemKind::StreamOnly),
            None
        );
        assert_eq!(
            plan.action_for("health", InputSet::Test, SystemKind::StreamOnly),
            None
        );
    }

    #[test]
    fn injected_livelock_is_a_real_deadlock() {
        let err = run_livelock();
        assert_eq!(err.kind(), "deadlock");
        let snap = err.snapshot().expect("deadlock carries a snapshot");
        assert_eq!(snap.retired_ops, 0);
    }
}
