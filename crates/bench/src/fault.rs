//! Deterministic fault injection for the sweep harness.
//!
//! A [`FaultPlan`] maps sweep cells — (workload, input, system) triples —
//! to injected failures: a panic, a genuine simulator livelock (driven
//! through the real engine watchdog), an artificial slowdown, or one of
//! the I/O faults the persistent result store's write layer understands
//! (see [`crate::store`]). Plans are parsed from the `BENCH_FAULT_PLAN`
//! environment variable, so the integration tests can exercise the
//! failure paths of the *real* `run_all` binary without patching any
//! experiment code.
//!
//! Plan syntax (entries separated by `;`):
//!
//! ```text
//! action@workload:input:system[=[ms][xN]]
//! action@*[=[ms][xN]]
//! ```
//!
//! * `action` is `panic`, `livelock`, `slow`, `stall`,
//!   `corrupt-checkpoint`, `torn-write`, `short-write`, `enospc` or
//!   `corrupt-record`;
//! * `workload` is a workload name, `input` is `train`/`ref`/`test`,
//!   `system` is a system label (`SystemKind::label`);
//! * any of the three selectors may be `*` to match everything, and a
//!   single `*` cell (`torn-write@*`) is shorthand for `*:*:*`;
//! * `slow` and `stall` require a `=<ms>` duration; no other action
//!   takes one;
//! * an optional `xN` suffix on the value caps the rule to the first
//!   `N` *attempts* of each matching cell (`slow@*=500x1` delays only
//!   attempt 1), which is how the chaos tests make a fault transient:
//!   the supervisor's retry runs clean. Without a cap the rule fires on
//!   every attempt.
//!
//! Example: `panic@mst:test:stream+cdp;slow@health:test:*=400x1;torn-write@*`.

use ecdp::system::SystemKind;
use sim_core::{Machine, MachineConfig, OpKind, SimError, Trace, TraceOp};
use sim_mem::{layout, SimMemory};
use workloads::InputSet;

/// The failure to inject into a matched cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic inside the cell's compute closure.
    Panic,
    /// Run a trace with circular address dependences through the real
    /// engine so the watchdog reports [`SimError::Deadlock`].
    Livelock,
    /// Sleep this many milliseconds before the real run (scheduling
    /// jitter for the executor tests). Under a per-cell wall-clock
    /// deadline the sleep is interruptible: a deadline overrun mid-sleep
    /// fails the attempt with `SimError::DeadlineExceeded`.
    Slow(u64),
    /// Stall the cell's *store write* for this many milliseconds — the
    /// I/O-side twin of [`FaultAction::Slow`], injected through the
    /// result store's faultable write layer.
    Stall(u64),
    /// Flip a byte of the cell's on-disk warm checkpoint before it is
    /// parsed, so the snapshot CRC check rejects it and the lab's
    /// cold-run fallback path runs for real.
    CorruptCheckpoint,
    /// Tear the cell's result-store append: write only a prefix of the
    /// record frame and report failure, as a crash mid-`write(2)` would.
    TornWrite,
    /// Short-write the cell's result-store append: persist a prefix of
    /// the frame but report *success*, the silent-truncation case the
    /// store's startup recovery must catch by CRC.
    ShortWrite,
    /// Fail the cell's result-store append with `ENOSPC` (disk full),
    /// driving the store's in-memory degradation path.
    Enospc,
    /// Flip a byte of the cell's result-store record after a successful
    /// append, so per-record CRC validation quarantines it on the next
    /// open and the cell heals by cold re-run.
    CorruptRecord,
}

impl FaultAction {
    /// True for the actions dispatched through the result store's
    /// faultable write layer rather than the cell's compute closure.
    pub fn is_store_fault(self) -> bool {
        matches!(
            self,
            FaultAction::Stall(_)
                | FaultAction::TornWrite
                | FaultAction::ShortWrite
                | FaultAction::Enospc
                | FaultAction::CorruptRecord
        )
    }
}

/// One `action@workload:input:system` entry of a plan.
#[derive(Debug, Clone, PartialEq, Eq)]
struct FaultRule {
    workload: String,
    input: String,
    system: String,
    action: FaultAction,
    /// Fire only on attempts `1..=max_attempts` of a matching cell;
    /// `None` means every attempt.
    max_attempts: Option<u32>,
}

fn matches(selector: &str, value: &str) -> bool {
    selector == "*" || selector == value
}

/// A set of fault-injection rules; empty means "no faults".
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// The empty plan: nothing is injected.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Adds a rule firing on every attempt; selectors may be `*`.
    pub fn push(&mut self, action: FaultAction, workload: &str, input: &str, system: &str) {
        self.push_capped(action, workload, input, system, None);
    }

    /// Adds a rule firing only on the first `max_attempts` attempts of
    /// each matching cell (`None` = every attempt).
    pub fn push_capped(
        &mut self,
        action: FaultAction,
        workload: &str,
        input: &str,
        system: &str,
        max_attempts: Option<u32>,
    ) {
        self.rules.push(FaultRule {
            workload: workload.to_string(),
            input: input.to_string(),
            system: system.to_string(),
            action,
            max_attempts,
        });
    }

    /// Parses the plan syntax described in the module docs.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for malformed entries; an empty
    /// or whitespace-only string parses to the empty plan.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::none();
        for entry in text.split(';').map(str::trim).filter(|e| !e.is_empty()) {
            let (action_text, cell) = entry
                .split_once('@')
                .ok_or_else(|| format!("fault entry {entry:?} is missing '@'"))?;
            // Optional value: `=<ms>`, `=x<N>` or `=<ms>x<N>`.
            let (cell, ms, cap) = match cell.split_once('=') {
                Some((c, value)) => {
                    let (ms_text, cap) = match value.split_once('x') {
                        Some((m, n)) => (
                            m,
                            Some(n.parse::<u32>().ok().filter(|&n| n > 0).ok_or_else(|| {
                                format!("fault entry {entry:?} has a bad attempt cap {n:?}")
                            })?),
                        ),
                        None => (value, None),
                    };
                    let ms = if ms_text.is_empty() {
                        None
                    } else {
                        Some(ms_text.parse::<u64>().map_err(|_| {
                            format!("fault entry {entry:?} has a non-numeric duration {ms_text:?}")
                        })?)
                    };
                    if ms.is_none() && cap.is_none() {
                        return Err(format!("fault entry {entry:?} has an empty '=' value"));
                    }
                    (c, ms, cap)
                }
                None => (cell, None, None),
            };
            // `@*` is shorthand for the all-wildcard cell `*:*:*`.
            let (workload, input, system) = if cell == "*" {
                ("*", "*", "*")
            } else {
                let mut parts = cell.split(':');
                match (parts.next(), parts.next(), parts.next()) {
                    (Some(w), Some(i), Some(s)) if parts.next().is_none() => (w, i, s),
                    _ => {
                        return Err(format!(
                        "fault entry {entry:?} must target workload:input:system (or a single '*')"
                    ))
                    }
                }
            };
            let action = match (action_text, ms) {
                ("panic", None) => FaultAction::Panic,
                ("livelock", None) => FaultAction::Livelock,
                ("slow", Some(ms)) => FaultAction::Slow(ms),
                ("stall", Some(ms)) => FaultAction::Stall(ms),
                ("slow" | "stall", None) => {
                    return Err(format!("fault entry {entry:?} needs '=<ms>'"))
                }
                ("corrupt-checkpoint", None) => FaultAction::CorruptCheckpoint,
                ("torn-write", None) => FaultAction::TornWrite,
                ("short-write", None) => FaultAction::ShortWrite,
                ("enospc", None) => FaultAction::Enospc,
                ("corrupt-record", None) => FaultAction::CorruptRecord,
                (
                    "panic" | "livelock" | "corrupt-checkpoint" | "torn-write" | "short-write"
                    | "enospc" | "corrupt-record",
                    Some(_),
                ) => return Err(format!("fault entry {entry:?} takes no duration")),
                (other, _) => return Err(format!("unknown fault action {other:?} in {entry:?}")),
            };
            plan.push_capped(action, workload, input, system, cap);
        }
        Ok(plan)
    }

    /// The plan configured via `BENCH_FAULT_PLAN` (read through the
    /// [`crate::request::compat`] gate), or the empty plan.
    ///
    /// # Panics
    ///
    /// Panics on a malformed plan — a misspelled injection silently
    /// testing nothing is worse than failing fast.
    pub fn from_env() -> Self {
        match crate::request::compat::setting("BENCH_FAULT_PLAN") {
            Some(text) => {
                FaultPlan::parse(&text).unwrap_or_else(|e| panic!("invalid BENCH_FAULT_PLAN: {e}"))
            }
            None => FaultPlan::none(),
        }
    }

    /// The first matching action for a cell's first attempt, if any.
    pub fn action_for(
        &self,
        workload: &str,
        input: InputSet,
        system: SystemKind,
    ) -> Option<FaultAction> {
        self.action_for_attempt(workload, input, system, 1)
    }

    /// The first matching action for `attempt` (1-based) of a cell:
    /// rules with an `xN` cap stop firing after attempt `N`, which is
    /// what lets a supervisor retry land clean.
    pub fn action_for_attempt(
        &self,
        workload: &str,
        input: InputSet,
        system: SystemKind,
        attempt: u32,
    ) -> Option<FaultAction> {
        let input = format!("{input:?}").to_lowercase();
        self.rules
            .iter()
            .filter(|r| r.max_attempts.is_none_or(|cap| attempt <= cap))
            .find(|r| {
                matches(&r.workload, workload)
                    && matches(&r.input, &input)
                    && matches(&r.system, system.label())
            })
            .map(|r| r.action)
    }

    /// The first matching *store* fault (see
    /// [`FaultAction::is_store_fault`]) for `attempt` of a cell — the
    /// injection hook of the result store's faultable write layer.
    /// Compute-side actions never leak through this lens, so one plan
    /// can target both layers.
    pub fn store_fault_for_attempt(
        &self,
        workload: &str,
        input: InputSet,
        system: SystemKind,
        attempt: u32,
    ) -> Option<FaultAction> {
        let input = format!("{input:?}").to_lowercase();
        self.rules
            .iter()
            .filter(|r| r.max_attempts.is_none_or(|cap| attempt <= cap))
            .filter(|r| r.action.is_store_fault())
            .find(|r| {
                matches(&r.workload, workload)
                    && matches(&r.input, &input)
                    && matches(&r.system, system.label())
            })
            .map(|r| r.action)
    }
}

/// Runs a two-op trace with circular address dependences through the real
/// engine and returns the watchdog's [`SimError::Deadlock`].
///
/// This is the injection vehicle for [`FaultAction::Livelock`]: the error
/// comes from the same detection path a genuine wedge would take, so the
/// harness tests cover snapshot capture and error propagation end-to-end.
///
/// # Panics
///
/// Panics if the engine fails to report the deadlock (itself a bug).
pub fn run_livelock() -> SimError {
    let op = |dep: u32| TraceOp {
        pc: 0x400,
        addr: layout::HEAP_BASE,
        value: 0,
        dep,
        kind: OpKind::Load,
        lds: false,
    };
    let trace = Trace {
        initial_memory: SimMemory::new(),
        ops: vec![op(1), op(0)],
        instructions: 2,
    };
    let mut machine = Machine::new(MachineConfig::default());
    match machine.run(&trace) {
        Err(e) => e,
        Ok(_) => unreachable!("circular address dependences cannot complete"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_mixed_plan() {
        let plan =
            FaultPlan::parse("panic@mst:test:stream+cdp; livelock@health:*:stream ;slow@*:*:*=7")
                .expect("valid plan");
        assert_eq!(
            plan.action_for("mst", InputSet::Test, SystemKind::StreamCdp),
            Some(FaultAction::Panic)
        );
        assert_eq!(
            plan.action_for("health", InputSet::Ref, SystemKind::StreamOnly),
            Some(FaultAction::Livelock)
        );
        // First match wins; the wildcard slow rule catches the rest.
        assert_eq!(
            plan.action_for("em3d", InputSet::Train, SystemKind::GhbAlone),
            Some(FaultAction::Slow(7))
        );
    }

    #[test]
    fn empty_and_invalid_plans() {
        assert!(FaultPlan::parse("").expect("empty ok").is_empty());
        assert!(FaultPlan::parse("  ;  ").expect("blank ok").is_empty());
        assert!(FaultPlan::parse("panic@mst:test").is_err());
        assert!(FaultPlan::parse("explode@a:b:c").is_err());
        assert!(FaultPlan::parse("slow@a:b:c").is_err());
        assert!(FaultPlan::parse("slow@a:b:c=fast").is_err());
        assert!(FaultPlan::parse("panic mst").is_err());
        assert!(FaultPlan::parse("corrupt-checkpoint@a:b:c=3").is_err());
        assert_eq!(
            FaultPlan::parse("corrupt-checkpoint@mst:test:stream")
                .expect("valid")
                .action_for("mst", InputSet::Test, SystemKind::StreamOnly),
            Some(FaultAction::CorruptCheckpoint)
        );
    }

    #[test]
    fn parses_io_fault_actions() {
        let plan = FaultPlan::parse(
            "torn-write@mst:test:stream;short-write@health:test:*;\
             enospc@*:*:stream+cdp;corrupt-record@em3d:test:stream;stall@*:*:*=25",
        )
        .expect("valid plan");
        assert_eq!(
            plan.action_for("mst", InputSet::Test, SystemKind::StreamOnly),
            Some(FaultAction::TornWrite)
        );
        assert_eq!(
            plan.action_for("health", InputSet::Test, SystemKind::StreamEcdp),
            Some(FaultAction::ShortWrite)
        );
        assert_eq!(
            plan.action_for("perimeter", InputSet::Ref, SystemKind::StreamCdp),
            Some(FaultAction::Enospc)
        );
        assert_eq!(
            plan.action_for("em3d", InputSet::Test, SystemKind::StreamOnly),
            Some(FaultAction::CorruptRecord)
        );
        assert_eq!(
            plan.action_for("treeadd", InputSet::Train, SystemKind::GhbAlone),
            Some(FaultAction::Stall(25))
        );
    }

    #[test]
    fn io_fault_actions_reject_durations_and_bad_cells() {
        assert!(FaultPlan::parse("torn-write@a:b:c=3").is_err());
        assert!(FaultPlan::parse("short-write@a:b:c=3").is_err());
        assert!(FaultPlan::parse("enospc@a:b:c=3").is_err());
        assert!(FaultPlan::parse("corrupt-record@a:b:c=3").is_err());
        assert!(FaultPlan::parse("stall@a:b:c").is_err(), "stall needs ms");
        assert!(FaultPlan::parse("torn-write@a:b").is_err(), "2-part cell");
        assert!(FaultPlan::parse("torn-write@a:b:c:d").is_err(), "4 parts");
        assert!(FaultPlan::parse("torn-write@").is_err(), "empty cell");
    }

    #[test]
    fn single_star_is_the_all_wildcard_cell() {
        let plan = FaultPlan::parse("torn-write@*").expect("valid");
        assert_eq!(
            plan.action_for("anything", InputSet::Ref, SystemKind::GhbAlone),
            Some(FaultAction::TornWrite)
        );
        // `**` or a partial star cell is still malformed.
        assert!(FaultPlan::parse("torn-write@**").is_err());
        assert!(FaultPlan::parse("torn-write@*:*").is_err());
    }

    #[test]
    fn attempt_caps_stop_rules_after_n_attempts() {
        let plan = FaultPlan::parse("slow@mst:test:stream=40x2;panic@health:test:*=x1")
            .expect("valid plan");
        let slow = |attempt| {
            plan.action_for_attempt("mst", InputSet::Test, SystemKind::StreamOnly, attempt)
        };
        assert_eq!(slow(1), Some(FaultAction::Slow(40)));
        assert_eq!(slow(2), Some(FaultAction::Slow(40)));
        assert_eq!(slow(3), None, "the cap clears the fault on attempt 3");
        let panic_at = |attempt| {
            plan.action_for_attempt("health", InputSet::Test, SystemKind::StreamCdp, attempt)
        };
        assert_eq!(panic_at(1), Some(FaultAction::Panic));
        assert_eq!(panic_at(2), None);
        // Malformed caps fail fast.
        assert!(FaultPlan::parse("slow@a:b:c=40x0").is_err(), "zero cap");
        assert!(FaultPlan::parse("slow@a:b:c=40xtwo").is_err());
        assert!(FaultPlan::parse("slow@a:b:c=").is_err(), "empty value");
    }

    #[test]
    fn store_fault_lens_sees_only_io_actions() {
        let plan = FaultPlan::parse("panic@mst:test:*;corrupt-record@mst:test:*;stall@*=9x1")
            .expect("valid plan");
        // The compute-side lens sees the panic first …
        assert_eq!(
            plan.action_for("mst", InputSet::Test, SystemKind::StreamOnly),
            Some(FaultAction::Panic)
        );
        // … while the store lens skips it and finds the record fault.
        assert_eq!(
            plan.store_fault_for_attempt("mst", InputSet::Test, SystemKind::StreamOnly, 1),
            Some(FaultAction::CorruptRecord)
        );
        assert_eq!(
            plan.store_fault_for_attempt("health", InputSet::Test, SystemKind::StreamOnly, 1),
            Some(FaultAction::Stall(9))
        );
        assert_eq!(
            plan.store_fault_for_attempt("health", InputSet::Test, SystemKind::StreamOnly, 2),
            None,
            "the x1 cap applies to the store lens too"
        );
    }

    #[test]
    fn unmatched_cells_get_no_action() {
        let plan = FaultPlan::parse("panic@mst:test:stream").expect("valid");
        assert_eq!(
            plan.action_for("mst", InputSet::Ref, SystemKind::StreamOnly),
            None
        );
        assert_eq!(
            plan.action_for("health", InputSet::Test, SystemKind::StreamOnly),
            None
        );
    }

    #[test]
    fn injected_livelock_is_a_real_deadlock() {
        let err = run_livelock();
        assert_eq!(err.kind(), "deadlock");
        let snap = err.snapshot().expect("deadlock carries a snapshot");
        assert_eq!(snap.retired_ops, 0);
    }
}
