//! Configuration-resolution tests against the real `run_all` binary:
//! `--config` files drive the sweep (including deep `BENCH_*` readers
//! like the manifest output directory), flags override files, files
//! override the environment, file↔environment disagreements are usage
//! errors naming both sources, and legacy variables earn a one-line
//! deprecation note when they actually source a setting.

#![allow(clippy::unwrap_used)]

use std::path::PathBuf;
use std::process::Command;

use bench::Manifest;

/// Every legacy variable the request layer reads — scrubbed so the tests
/// are hermetic against the caller's environment.
const BENCH_VARS: [&str; 18] = [
    "BENCH_SWEEP_WORKLOADS",
    "BENCH_SWEEP_INPUT",
    "BENCH_SWEEP_SYSTEMS",
    "BENCH_JOBS",
    "BENCH_RETRY_ATTEMPTS",
    "BENCH_RETRY_BACKOFF_MS",
    "BENCH_CELL_DEADLINE_MS",
    "BENCH_CHECKPOINT_DIR",
    "BENCH_WARM_CYCLES",
    "BENCH_RESULT_STORE",
    "BENCH_STORE_COMPACT",
    "BENCH_FAULT_PLAN",
    "BENCH_TRACE_CACHE",
    "BENCH_LAB_DIR",
    "BENCH_VERBOSE",
    "BENCH_VALIDATE_THRESHOLDS",
    "BENCH_BASELINE",
    "BENCH_UPDATE_GOLDEN",
];

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ecdp-reqcfg-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run_all() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_run_all"));
    for var in BENCH_VARS {
        cmd.env_remove(var);
    }
    cmd.arg("--sweep");
    cmd
}

/// A one-cell config document whose `lab_dir` also exercises the deep
/// `Manifest::out_dir` reader through the installed overrides.
fn one_cell_config(dir: &std::path::Path, extra: &str) -> PathBuf {
    let lab_dir = dir.join("lab");
    let path = dir.join("sweep.json");
    std::fs::write(
        &path,
        format!(
            r#"{{"schema_version":1,"workloads":["mst"],"input":"test","systems":["stream"],"lab_dir":{:?}{extra}}}"#,
            lab_dir.display().to_string()
        ),
    )
    .unwrap();
    path
}

/// `--config` alone drives both the sweep grid and the deep readers: the
/// manifest lands in the file's `lab_dir` with exactly the file's grid.
#[test]
fn config_file_drives_sweep_and_deep_readers() {
    let dir = scratch("file");
    let config = one_cell_config(&dir, "");
    let out = run_all().arg("--config").arg(&config).output().unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "{stderr}");
    let manifest =
        Manifest::parse(&std::fs::read_to_string(dir.join("lab/run_all.json")).unwrap()).unwrap();
    let records: Vec<_> = manifest.successes().collect();
    assert_eq!(records.len(), 1, "{stderr}");
    assert_eq!(records[0].workload, "mst");
    assert_eq!(records[0].system, "stream");
    // A file-sourced setting is the typed path — no deprecation notes.
    assert!(!stderr.contains("note: legacy"), "{stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A field set by both the file and the environment to different values
/// is a usage error (exit 2) naming both sources.
#[test]
fn file_env_conflict_exits_2_naming_both_sources() {
    let dir = scratch("conflict");
    let config = one_cell_config(&dir, r#","jobs":4"#);
    let out = run_all()
        .arg("--config")
        .arg(&config)
        .env("BENCH_JOBS", "8")
        .output()
        .unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(2), "{stderr}");
    assert!(stderr.contains("--config"), "{stderr}");
    assert!(stderr.contains("BENCH_JOBS"), "{stderr}");
    assert!(stderr.contains("jobs"), "{stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A flag on the conflicted field silences the file/environment
/// disagreement — the flag decides.
#[test]
fn flag_overrides_both_file_and_env_on_a_conflicted_field() {
    let dir = scratch("flagwins");
    let config = one_cell_config(&dir, r#","jobs":4"#);
    let out = run_all()
        .arg("--config")
        .arg(&config)
        .arg("--jobs")
        .arg("2")
        .env("BENCH_JOBS", "8")
        .output()
        .unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "{stderr}");
    assert!(stderr.contains("on 2 workers"), "{stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Legacy variables still work without a config file, but each one that
/// actually sources a setting earns a one-line deprecation note.
#[test]
fn legacy_env_sourcing_emits_one_deprecation_note_per_var() {
    let dir = scratch("legacy");
    let lab_dir = dir.join("lab");
    let out = run_all()
        .env("BENCH_SWEEP_WORKLOADS", "mst")
        .env("BENCH_SWEEP_INPUT", "test")
        .env("BENCH_SWEEP_SYSTEMS", "stream")
        .env("BENCH_LAB_DIR", &lab_dir)
        .output()
        .unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "{stderr}");
    assert!(
        stderr.contains("note: legacy BENCH_SWEEP_WORKLOADS is the source of `workloads`"),
        "{stderr}"
    );
    assert_eq!(
        stderr.matches("note: legacy BENCH_SWEEP_WORKLOADS").count(),
        1,
        "the note fires once per variable: {stderr}"
    );
    // The env-driven grid still runs and lands in the env-driven lab dir.
    let manifest =
        Manifest::parse(&std::fs::read_to_string(lab_dir.join("run_all.json")).unwrap()).unwrap();
    assert_eq!(manifest.successes().count(), 1, "{stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Unknown fields in a config file fail fast as usage errors instead of
/// silently configuring nothing.
#[test]
fn unknown_config_field_is_a_usage_error() {
    let dir = scratch("unknown");
    let config = dir.join("sweep.json");
    std::fs::write(
        &config,
        r#"{"schema_version":1,"workloads":["mst"],"jobz":4}"#,
    )
    .unwrap();
    let out = run_all().arg("--config").arg(&config).output().unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(2), "{stderr}");
    assert!(stderr.contains("jobz"), "{stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}
