//! Sweep-service integration tests: concurrent clients coalescing on an
//! in-process [`bench::SweepService`], and end-to-end HTTP drives of the
//! real `sweepd` binary — golden-grid conformance, cross-POST
//! memoization through the persistent store, and kill + restart resume.
//!
//! Acceptance properties (mirroring ISSUE.md):
//!
//! * two clients POSTing overlapping grids concurrently simulate each
//!   unique config-hashed cell exactly once, and both receive results
//!   byte-identical to a solo run of the union grid;
//! * POSTing the golden smoke grid to `sweepd` streams one event per
//!   cell and yields a manifest bit-identical to `tests/golden/smoke.json`;
//! * a second identical POST is served entirely from the store (zero
//!   simulated cells);
//! * killing the server mid-job and restarting on the same store resumes
//!   without re-simulating the cells already committed.

#![allow(clippy::unwrap_used)]

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::Duration;

use bench::service::Job;
use bench::{Manifest, ResultStore, RunRecord, SweepPlan, SweepRequest, SweepService};
use ecdp::system::SystemKind;
use sim_core::Json;
use workloads::InputSet;

const SYSTEMS: [SystemKind; 3] = [
    SystemKind::StreamOnly,
    SystemKind::StreamCdp,
    SystemKind::StreamEcdpThrottled,
];

/// Every legacy variable the request layer reads — scrubbed from child
/// processes so the tests are hermetic against the caller's environment.
const BENCH_VARS: [&str; 18] = [
    "BENCH_SWEEP_WORKLOADS",
    "BENCH_SWEEP_INPUT",
    "BENCH_SWEEP_SYSTEMS",
    "BENCH_JOBS",
    "BENCH_RETRY_ATTEMPTS",
    "BENCH_RETRY_BACKOFF_MS",
    "BENCH_CELL_DEADLINE_MS",
    "BENCH_CHECKPOINT_DIR",
    "BENCH_WARM_CYCLES",
    "BENCH_RESULT_STORE",
    "BENCH_STORE_COMPACT",
    "BENCH_FAULT_PLAN",
    "BENCH_TRACE_CACHE",
    "BENCH_LAB_DIR",
    "BENCH_VERBOSE",
    "BENCH_VALIDATE_THRESHOLDS",
    "BENCH_BASELINE",
    "BENCH_UPDATE_GOLDEN",
];

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ecdp-service-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The checked-in golden smoke records, sorted by cell identity.
fn golden_records() -> Vec<RunRecord> {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/smoke.json");
    let golden = Manifest::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
    let mut records: Vec<RunRecord> = golden.successes().cloned().collect();
    records.sort_by_key(RunRecord::sort_key);
    records
}

/// Asserts a manifest covers exactly the golden cells with byte-identical
/// deterministic metrics (wall-clock and dispositions excluded).
fn assert_matches_golden(manifest: &Manifest) {
    let golden = golden_records();
    let mut records: Vec<RunRecord> = manifest.successes().cloned().collect();
    records.sort_by_key(RunRecord::sort_key);
    assert_eq!(manifest.failures().count(), 0, "no failed cells");
    assert_eq!(golden.len(), records.len(), "cell coverage differs");
    for (g, r) in golden.iter().zip(&records) {
        assert_eq!(g.sort_key(), r.sort_key(), "cell order differs");
        assert!(
            g.same_metrics(r),
            "{} {} {} diverged from the golden snapshot",
            r.workload,
            r.input,
            r.system
        );
    }
}

fn wait_done(job: &Arc<Job>) {
    let mut from = 0;
    for _ in 0..1200 {
        let (lines, done) = job.wait_events(from, Duration::from_millis(100));
        from += lines.len();
        if done {
            return;
        }
    }
    panic!("job {} did not finish", job.id());
}

/// Two clients submitting overlapping grids concurrently: every unique
/// cell simulates exactly once, and both manifests match a solo run of
/// the union grid cell for cell.
#[test]
fn concurrent_clients_coalesce_overlap_and_match_solo_run() {
    let dir = scratch("concurrent");
    let store = Arc::new(ResultStore::open(dir.join("results.store")));
    let svc = Arc::new(SweepService::start(Some(store), 4));

    let grid = |workloads: &[&str]| {
        SweepRequest::default()
            .with_workloads(workloads)
            .with_input(InputSet::Test)
            .with_systems(&SYSTEMS)
    };
    // A and B overlap on health x 3 systems; the union is 9 unique cells.
    let (a, b) = {
        let (svc_a, req_a) = (Arc::clone(&svc), grid(&["mst", "health"]));
        let (svc_b, req_b) = (Arc::clone(&svc), grid(&["health", "libquantum"]));
        let ha = std::thread::spawn(move || svc_a.submit(req_a).unwrap());
        let hb = std::thread::spawn(move || svc_b.submit(req_b).unwrap());
        (ha.join().unwrap(), hb.join().unwrap())
    };
    wait_done(&a);
    wait_done(&b);

    let (sa, sb) = (a.status(), b.status());
    assert_eq!(sa.completed, 6);
    assert_eq!(sb.completed, 6);
    assert_eq!(sa.failed + sb.failed, 0);
    // Each unique cell was queued by exactly one job; the overlap rode
    // along as store hits or in-flight coalesces.
    assert_eq!(sa.queued + sb.queued, 9, "a={sa:?} b={sb:?}");
    assert_eq!(
        sa.hits + sa.coalesced + sb.hits + sb.coalesced,
        3,
        "a={sa:?} b={sb:?}"
    );
    assert_eq!(svc.cells_simulated(), 9, "every unique cell ran once");
    assert_eq!(svc.store().unwrap().len(), 9, "every unique cell committed");

    // Both manifests must be byte-identical (modulo wall-clock) to an
    // independent solo sweep of the union grid.
    let solo = SweepPlan::cross(
        "solo-union",
        &["mst", "health", "libquantum"],
        InputSet::Test,
        &SYSTEMS,
    )
    .run(&bench::Lab::new(), 2);
    let find = |r: &RunRecord| {
        solo.iter()
            .find(|s| s.workload == r.workload && s.system == r.system)
            .cloned()
            .unwrap()
    };
    for job in [&a, &b] {
        let manifest = job.manifest().unwrap();
        assert_eq!(manifest.successes().count(), 6);
        for r in manifest.successes() {
            let s = find(r);
            assert!(
                s.same_metrics(r),
                "{} {} {} diverged from the solo run",
                r.workload,
                r.input,
                r.system
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// HTTP end-to-end against the real binary
// ---------------------------------------------------------------------

/// Spawns `sweepd` on an OS-picked port and returns the child plus the
/// bound address parsed from its stdout banner.
fn spawn_sweepd(store: &Path, jobs: usize, extra_env: &[(&str, &str)]) -> (Child, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_sweepd"));
    cmd.arg("--addr")
        .arg("127.0.0.1:0")
        .arg("--jobs")
        .arg(jobs.to_string())
        .arg("--store")
        .arg(store)
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    for var in BENCH_VARS {
        cmd.env_remove(var);
    }
    for (k, v) in extra_env {
        cmd.env(k, v);
    }
    let mut child = cmd.spawn().unwrap();
    let mut banner = String::new();
    BufReader::new(child.stdout.take().unwrap())
        .read_line(&mut banner)
        .unwrap();
    let addr = banner
        .trim()
        .strip_prefix("sweepd listening on http://")
        .unwrap_or_else(|| panic!("unexpected banner {banner:?}"))
        .to_string();
    (child, addr)
}

/// One full HTTP exchange; returns (status, body).
fn http(addr: &str, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    let mut text = String::new();
    BufReader::new(stream).read_to_string(&mut text).unwrap();
    let (head, body) = text.split_once("\r\n\r\n").unwrap();
    let status = head.split_whitespace().nth(1).unwrap().parse().unwrap();
    (status, body.to_string())
}

fn get_json(addr: &str, path: &str) -> Json {
    let (status, body) = http(addr, "GET", path, "");
    assert_eq!(status, 200, "GET {path}: {body}");
    Json::parse(&body).unwrap()
}

/// POSTs a sweep request and returns the 202 body (job id + status).
fn post_sweep(addr: &str, body: &str) -> Json {
    let (status, body) = http(addr, "POST", "/sweep", body);
    assert_eq!(status, 202, "POST /sweep: {body}");
    Json::parse(&body).unwrap()
}

fn num(j: &Json, key: &str) -> u64 {
    j.get(key)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("missing {key} in {j:?}"))
}

/// The golden smoke grid as a POST body.
fn smoke_body() -> &'static str {
    r#"{"schema_version":1,"workloads":["mst","health","libquantum"],"input":"test","systems":["stream","stream+cdp","stream+ecdp+throttle"]}"#
}

/// A JSONL progress stream: headers consumed, events read line by line.
struct EventStream {
    reader: BufReader<TcpStream>,
}

impl EventStream {
    fn open(addr: &str, job: u64) -> EventStream {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(120)))
            .unwrap();
        write!(
            stream,
            "GET /jobs/{job}/events HTTP/1.1\r\nhost: {addr}\r\nconnection: close\r\n\r\n"
        )
        .unwrap();
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.starts_with("HTTP/1.1 200"), "{line:?}");
        while !line.trim_end_matches(['\r', '\n']).is_empty() {
            line.clear();
            reader.read_line(&mut line).unwrap();
        }
        EventStream { reader }
    }

    /// The next event, or `None` once the server closes the stream (or
    /// dies — the kill test relies on that surfacing as end-of-stream).
    fn next(&mut self) -> Option<Json> {
        let mut line = String::new();
        loop {
            line.clear();
            let n = self.reader.read_line(&mut line).ok()?;
            if n == 0 {
                return None;
            }
            let trimmed = line.trim();
            if !trimmed.is_empty() {
                return Some(Json::parse(trimmed).unwrap());
            }
        }
    }

    /// Drains the stream to its end, returning every event.
    fn collect(mut self) -> Vec<Json> {
        let mut events = Vec::new();
        while let Some(e) = self.next() {
            events.push(e);
        }
        events
    }
}

fn event_kind(e: &Json) -> &str {
    e.get("event").and_then(Json::as_str).unwrap_or("?")
}

/// The full service loop over HTTP: POST the golden smoke grid, stream
/// its events, fetch the manifest and diff it against the golden
/// snapshot, then POST again and watch the store answer everything.
#[test]
fn sweepd_serves_golden_grid_and_memoizes_across_posts() {
    let dir = scratch("e2e");
    let store = dir.join("results.store");
    let (mut child, addr) = spawn_sweepd(&store, 2, &[]);

    let (status, body) = http(&addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    let health = Json::parse(&body).unwrap();
    assert_eq!(num(&health, "cells_simulated"), 0);

    // First POST: everything is fresh work.
    let resp = post_sweep(&addr, smoke_body());
    let job = num(&resp, "job");
    assert_eq!(num(&resp, "total"), 9);
    assert_eq!(num(&resp, "queued"), 9);
    assert_eq!(num(&resp, "hit"), 0);

    let events = EventStream::open(&addr, job).collect();
    assert_eq!(event_kind(&events[0]), "submitted");
    let cells: Vec<&Json> = events.iter().filter(|e| event_kind(e) == "cell").collect();
    assert_eq!(cells.len(), 9, "one event per cell: {events:?}");
    for e in &cells {
        assert_eq!(e.get("ok"), Some(&Json::Bool(true)), "{e:?}");
        assert_eq!(
            e.get("disposition").and_then(Json::as_str),
            Some("queued"),
            "{e:?}"
        );
    }
    assert_eq!(event_kind(events.last().unwrap()), "done");

    // The finished job's manifest is bit-identical to the golden stats.
    let (status, body) = http(&addr, "GET", &format!("/jobs/{job}/manifest"), "");
    assert_eq!(status, 200, "{body}");
    assert_matches_golden(&Manifest::parse(&body).unwrap());
    assert_eq!(num(&get_json(&addr, "/healthz"), "cells_simulated"), 9);

    // Second POST: served entirely from the store, nothing simulated.
    let resp = post_sweep(&addr, smoke_body());
    let job2 = num(&resp, "job");
    assert_eq!(num(&resp, "hit"), 9, "{resp:?}");
    assert_eq!(num(&resp, "queued"), 0);
    assert_eq!(resp.get("done"), Some(&Json::Bool(true)));
    let (status, body) = http(&addr, "GET", &format!("/jobs/{job2}/manifest"), "");
    assert_eq!(status, 200, "{body}");
    assert_matches_golden(&Manifest::parse(&body).unwrap());
    assert_eq!(
        num(&get_json(&addr, "/healthz"), "cells_simulated"),
        9,
        "the second POST simulated nothing"
    );

    // Single-cell fetch by config hash, straight from the store.
    let hash = get_json(&addr, "/healthz")
        .get("config_hash")
        .and_then(Json::as_str)
        .unwrap()
        .to_string();
    let record = get_json(&addr, &format!("/cells/mst/test/stream/{hash}"));
    assert_eq!(record.get("workload").and_then(Json::as_str), Some("mst"));
    let (status, _) = http(&addr, "GET", "/cells/mst/test/stream/0000000000000000", "");
    assert_eq!(status, 404, "a wrong config hash is a miss");
    let (status, _) = http(&addr, "GET", "/no/such/endpoint", "");
    assert_eq!(status, 404);

    let _ = child.kill();
    let _ = child.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Kill the server mid-job, restart it on the same store, and resubmit:
/// the committed cells come back as store hits without re-simulation and
/// the final manifest still matches the golden snapshot.
#[test]
fn sweepd_restart_resumes_from_store_without_resimulating() {
    let dir = scratch("restart");
    let store = dir.join("results.store");

    // Single worker plus a wildcard slowdown (wall-clock only, stats
    // untouched) so the kill reliably lands mid-sweep.
    let (mut child, addr) = spawn_sweepd(&store, 1, &[("BENCH_FAULT_PLAN", "slow@*=250")]);
    let resp = post_sweep(&addr, smoke_body());
    let job = num(&resp, "job");
    let mut stream = EventStream::open(&addr, job);
    let mut committed = 0;
    while committed < 2 {
        let e = stream.next().expect("stream ended before two cells");
        if event_kind(&e) == "cell" {
            assert_eq!(e.get("ok"), Some(&Json::Bool(true)), "{e:?}");
            committed += 1;
        }
    }
    // SIGKILL: no destructors, no atexit — a genuine crash. Progress
    // events are emitted only after the store append, so both observed
    // cells are on disk.
    let _ = child.kill();
    let _ = child.wait();
    drop(stream);

    // Restart on the same store, no faults: the committed cells are
    // answered at submit time and only the remainder simulates.
    let (mut child, addr) = spawn_sweepd(&store, 2, &[]);
    let resp = post_sweep(&addr, smoke_body());
    let job = num(&resp, "job");
    let hits = num(&resp, "hit");
    assert!(hits >= 2, "committed cells must resume as hits: {resp:?}");
    assert_eq!(num(&resp, "queued"), 9 - hits);

    let events = EventStream::open(&addr, job).collect();
    assert_eq!(event_kind(events.last().unwrap()), "done");
    let (status, body) = http(&addr, "GET", &format!("/jobs/{job}/manifest"), "");
    assert_eq!(status, 200, "{body}");
    assert_matches_golden(&Manifest::parse(&body).unwrap());
    assert_eq!(
        num(&get_json(&addr, "/healthz"), "cells_simulated"),
        9 - hits,
        "completed cells were not re-simulated"
    );

    let _ = child.kill();
    let _ = child.wait();
    let _ = std::fs::remove_dir_all(&dir);
}
