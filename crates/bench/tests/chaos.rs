//! Chaos fault campaign: I/O faults through the result store's write
//! layer, the cell supervisor's retry/deadline semantics, and a
//! kill-resume harness that SIGKILLs the real `run_all` binary
//! mid-sweep.
//!
//! Acceptance properties (mirroring the store's design contract):
//!
//! * an injected store-fault campaign loses **zero** results in memory —
//!   the sweep completes every cell with stats byte-identical to a
//!   fault-free run — and the follow-up sweep heals every damaged
//!   record back into the store with zero duplicated cells;
//! * a transient (deadline-overrun) cell retries with deterministic
//!   backoff and lands as a success carrying its attempt history;
//!   permanent failures fail fast without retries;
//! * a `run_all` process killed at randomized points mid-sweep resumes
//!   to a manifest byte-identical (modulo wall-clock) to an
//!   uninterrupted run, with every cell committed to the store exactly
//!   once.

#![allow(clippy::unwrap_used)]

use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::time::Duration;

use bench::{
    FaultPlan, Lab, Manifest, ResultStore, RetryInfo, RetryPolicy, RunOutcome, RunRecord,
    SweepOptions, SweepPlan,
};
use ecdp::system::SystemKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use workloads::InputSet;

const WORKLOADS: [&str; 3] = ["mst", "health", "libquantum"];
const SYSTEMS: [SystemKind; 3] = [
    SystemKind::StreamOnly,
    SystemKind::StreamCdp,
    SystemKind::StreamEcdpThrottled,
];

fn plan() -> SweepPlan {
    SweepPlan::cross("chaos-smoke", &WORKLOADS, InputSet::Test, &SYSTEMS)
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ecdp-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Success records of an execution, sorted by cell identity.
fn sorted_records(outcomes: &[RunOutcome]) -> Vec<RunRecord> {
    let mut records: Vec<RunRecord> = outcomes
        .iter()
        .filter_map(RunOutcome::success)
        .cloned()
        .collect();
    records.sort_by_key(RunRecord::sort_key);
    records
}

/// Asserts two record sets cover the same cells with byte-identical
/// deterministic metrics.
fn assert_same_results(golden: &[RunRecord], other: &[RunRecord]) {
    assert_eq!(golden.len(), other.len(), "cell coverage differs");
    for (g, o) in golden.iter().zip(other) {
        assert_eq!(g.sort_key(), o.sort_key(), "cell order differs");
        assert!(
            g.same_metrics(o),
            "{} {} {} diverged from the fault-free run",
            o.workload,
            o.input,
            o.system
        );
    }
}

/// The full I/O fault campaign, in process: every store-fault action
/// fires on some cell, the sweep loses nothing, and the next sweep
/// heals the store back to full coverage.
#[test]
fn store_fault_campaign_loses_nothing_and_heals() {
    let dir = scratch("campaign");
    let path = dir.join("results.store");

    // Fault-free golden run.
    let golden_exec = plan().run_fault_tolerant(&Lab::new(), 4, &SweepOptions::default());
    assert_eq!(golden_exec.failed(), 0);
    let golden = sorted_records(&golden_exec.outcomes);
    assert_eq!(golden.len(), 9);

    // Campaign pass: jobs=1 keeps appends in plan order, so torn-write
    // on the *last* cell cannot degrade earlier appends. Every store
    // fault is exercised: silent short write, in-place corruption, a
    // store-side stall, and a torn write that degrades the store.
    let faults = FaultPlan::parse(
        "corrupt-record@mst:test:stream;\
         short-write@health:test:stream+cdp;\
         stall@health:test:stream=30;\
         torn-write@libquantum:test:stream+ecdp+throttle",
    )
    .unwrap();
    let store = ResultStore::open(&path);
    let exec = plan().run_fault_tolerant(
        &Lab::with_faults(faults),
        1,
        &SweepOptions {
            store: Some(&store),
            ..SweepOptions::default()
        },
    );
    assert_eq!(exec.failed(), 0, "store faults never fail a cell");
    assert_eq!(exec.ran, 9);
    assert_eq!(exec.store_hits, 0);
    let records = sorted_records(&exec.outcomes);
    assert_same_results(&golden, &records);
    // In-memory store kept everything despite the degradation.
    assert_eq!(store.len(), 9, "zero lost results in memory");
    assert!(store.degraded().is_some(), "the torn write degraded it");
    // Dispositions record what the write layer actually did.
    let disposition = |workload: &str, system: &str| {
        records
            .iter()
            .find(|r| r.workload == workload && r.system == system)
            .and_then(|r| r.store.clone())
            .unwrap()
    };
    assert_eq!(disposition("mst", "stream"), "appended");
    assert_eq!(disposition("health", "stream+cdp"), "appended", "silent");
    assert!(
        disposition("libquantum", "stream+ecdp+throttle").starts_with("degraded:"),
        "torn write must surface in the manifest"
    );
    drop(store);

    // Reopen: recovery quarantines the corrupt + short-written records
    // and truncates the torn tail; 6 of 9 cells survive on disk.
    let store = ResultStore::open(&path);
    let recovery = store.recovery();
    assert!(recovery.quarantined() >= 2, "{recovery:?}");
    assert!(recovery.healed);
    assert_eq!(store.len(), 6, "{recovery:?}");

    // Heal pass: a fault-free sweep serves the survivors from the store
    // and re-simulates exactly the damaged cells.
    let exec = plan().run_fault_tolerant(
        &Lab::new(),
        4,
        &SweepOptions {
            store: Some(&store),
            ..SweepOptions::default()
        },
    );
    assert_eq!(exec.failed(), 0);
    assert_eq!(exec.store_hits, 6, "survivors are served, not re-run");
    assert_eq!(exec.ran, 3, "only the damaged cells re-simulate");
    assert_same_results(&golden, &sorted_records(&exec.outcomes));
    assert_eq!(store.len(), 9, "healed back to full coverage");
    let hits = exec
        .outcomes
        .iter()
        .filter_map(RunOutcome::success)
        .filter(|r| r.store.as_deref() == Some("hit"))
        .count();
    assert_eq!(hits, 6);
    drop(store);

    // Third open: the heal left a clean, complete log behind.
    let store = ResultStore::open(&path);
    assert!(store.recovery().is_clean());
    assert_eq!(store.len(), 9, "zero duplicated cells");

    let _ = std::fs::remove_dir_all(&dir);
}

/// A deadline-overrunning (transient) cell retries under the supervisor
/// with deterministic backoff and lands as a success carrying its
/// attempt history; the history round-trips through the manifest.
#[test]
fn transient_deadline_retry_lands_with_attempt_history() {
    let mut single = SweepPlan::new("chaos-retry");
    single.push("mst", InputSet::Test, SystemKind::StreamOnly);

    // Golden stats for the same cell, no faults.
    let golden_exec = single.run_fault_tolerant(&Lab::new(), 1, &SweepOptions::default());
    let golden = sorted_records(&golden_exec.outcomes);

    // Attempt 1 sleeps 400 ms into a 120 ms deadline and dies; the x1
    // cap clears the fault so attempt 2 runs clean. The deadline covers
    // the whole attempt including trace/profile warm-up, so warm those
    // caches through an unfaulted sibling system first — the supervised
    // attempts then measure only the injected sleep and the simulation.
    let faults = FaultPlan::parse("slow@mst:test:stream=400x1").unwrap();
    let lab = Lab::with_faults(faults);
    lab.run_on("mst", InputSet::Test, SystemKind::StreamCdp);
    let exec = single.run_fault_tolerant(
        &lab,
        1,
        &SweepOptions {
            retry: RetryPolicy {
                max_attempts: 3,
                backoff_base_ms: 10,
                deadline_ms: Some(120),
            },
            ..SweepOptions::default()
        },
    );
    assert_eq!(exec.failed(), 0, "the retry must land");
    let records = sorted_records(&exec.outcomes);
    assert_same_results(&golden, &records);
    assert_eq!(
        records[0].retry,
        Some(RetryInfo {
            attempts: 2,
            attempt_errors: vec!["deadline:transient".to_string()],
            total_backoff_ms: 10,
        }),
        "the success carries its attempt history"
    );

    // The attempt history survives the manifest round trip.
    let manifest = Manifest {
        name: "chaos-retry".to_string(),
        records: exec.outcomes,
    };
    let parsed = Manifest::parse(&manifest.to_json().to_string_pretty()).unwrap();
    assert_eq!(parsed, manifest);
}

/// Exhausted transients fail with the full attempt history; permanent
/// failures never retry.
#[test]
fn exhausted_and_permanent_failures_record_their_attempts() {
    let mut single = SweepPlan::new("chaos-exhaust");
    single.push("mst", InputSet::Test, SystemKind::StreamOnly);

    // Uncapped slowdown: every attempt overruns the deadline.
    let faults = FaultPlan::parse("slow@mst:test:stream=400").unwrap();
    let exec = single.run_fault_tolerant(
        &Lab::with_faults(faults),
        1,
        &SweepOptions {
            retry: RetryPolicy {
                max_attempts: 2,
                backoff_base_ms: 5,
                deadline_ms: Some(100),
            },
            ..SweepOptions::default()
        },
    );
    assert_eq!(exec.failed(), 1);
    let failure = exec.outcomes[0].failure().unwrap();
    assert_eq!(failure.error_kind, "deadline");
    assert_eq!(
        failure.retry,
        Some(RetryInfo {
            attempts: 2,
            attempt_errors: vec![
                "deadline:transient".to_string(),
                "deadline:transient".to_string()
            ],
            total_backoff_ms: 5,
        }),
        "both attempts and the single backoff are recorded"
    );

    // A permanent failure (panic) burns exactly one attempt.
    let faults = FaultPlan::parse("panic@mst:test:stream").unwrap();
    let exec = single.run_fault_tolerant(
        &Lab::with_faults(faults),
        1,
        &SweepOptions {
            retry: RetryPolicy {
                max_attempts: 3,
                backoff_base_ms: 5,
                deadline_ms: None,
            },
            ..SweepOptions::default()
        },
    );
    assert_eq!(exec.failed(), 1);
    let failure = exec.outcomes[0].failure().unwrap();
    assert_eq!(failure.error_kind, "panic");
    assert_eq!(
        failure.retry,
        Some(RetryInfo {
            attempts: 1,
            attempt_errors: vec!["panic:permanent".to_string()],
            total_backoff_ms: 0,
        }),
        "permanent failures never retry"
    );

    // The backoff schedule itself is deterministic and jitter-free.
    let policy = RetryPolicy {
        max_attempts: 5,
        backoff_base_ms: 10,
        deadline_ms: None,
    };
    assert_eq!(
        (1..=4).map(|a| policy.backoff_ms(a)).collect::<Vec<_>>(),
        vec![10, 20, 40, 80]
    );
}

/// Kill-resume harness against the real binary: SIGKILL `run_all`
/// mid-sweep at seeded random points, then let a final run heal. The
/// resumed manifest must match an uninterrupted run cell-for-cell with
/// byte-identical stats, and the store must hold each cell exactly once.
#[test]
fn run_all_binary_survives_sigkill_and_heals_to_identical_results() {
    let golden_dir = scratch("kill-golden");
    let chaos_dir = scratch("kill-chaos");
    let store_path = chaos_dir.join("results.store");

    let base_cmd = |lab_dir: &PathBuf| {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_run_all"));
        cmd.arg("--sweep")
            .arg("--jobs")
            .arg("2")
            .env("BENCH_LAB_DIR", lab_dir)
            .env("BENCH_SWEEP_WORKLOADS", WORKLOADS.join(","))
            .env("BENCH_SWEEP_INPUT", "test")
            .env(
                "BENCH_SWEEP_SYSTEMS",
                SYSTEMS.map(SystemKind::label).join(","),
            )
            .env_remove("BENCH_FAULT_PLAN")
            .env_remove("BENCH_RESULT_STORE")
            .env_remove("BENCH_STORE_COMPACT");
        cmd
    };

    // Uninterrupted golden run (no store, no faults).
    let out = base_cmd(&golden_dir).output().unwrap();
    assert!(
        out.status.success(),
        "golden run failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let golden =
        Manifest::parse(&std::fs::read_to_string(golden_dir.join("run_all.json")).unwrap())
            .unwrap();
    assert_eq!(golden.successes().count(), 9);
    let mut golden_records: Vec<RunRecord> = golden.successes().cloned().collect();
    golden_records.sort_by_key(RunRecord::sort_key);

    // Kill pass: a wildcard slowdown stretches every cell's wall time
    // (without touching its simulated stats) so seeded kill points land
    // mid-sweep. Each round resumes from whatever the previous kill
    // left behind — a partial manifest and a possibly torn store log.
    let mut rng = StdRng::seed_from_u64(0xC4A05);
    for round in 0..3 {
        let mut child = base_cmd(&chaos_dir)
            .arg("--resume")
            .arg("--store")
            .arg(&store_path)
            .env("BENCH_FAULT_PLAN", "slow@*=150")
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .unwrap();
        let delay = rng.gen_range(80u64..600);
        std::thread::sleep(Duration::from_millis(delay));
        // SIGKILL: no destructors, no atexit — a genuine crash.
        let _ = child.kill();
        let _ = child.wait();
        eprintln!("[chaos] round {round}: killed after {delay} ms");
    }

    // Final run: no kill. It must recover the store, resume the
    // manifest, and finish every remaining cell.
    let out = base_cmd(&chaos_dir)
        .arg("--resume")
        .arg("--store")
        .arg(&store_path)
        .env("BENCH_FAULT_PLAN", "slow@*=150")
        .output()
        .unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "healing run failed:\n{stderr}");
    assert!(stderr.contains("0 failed"), "{stderr}");

    let healed =
        Manifest::parse(&std::fs::read_to_string(chaos_dir.join("run_all.json")).unwrap()).unwrap();
    assert_eq!(healed.records.len(), 9, "one record per cell, no dups");
    assert_eq!(healed.failures().count(), 0);
    let mut healed_records: Vec<RunRecord> = healed.successes().cloned().collect();
    healed_records.sort_by_key(RunRecord::sort_key);
    assert_same_results(&golden_records, &healed_records);

    // The store holds each cell exactly once, and the kill damage has
    // been healed away.
    let store = ResultStore::open(&store_path);
    assert_eq!(store.len(), 9, "zero lost, zero duplicated cells");
    assert!(store.recovery().is_clean(), "{:?}", store.recovery());
    drop(store);

    // The heal-report artifact exists and reflects the final state.
    let report_path = format!("{}.report.json", store_path.display());
    let report = sim_core::Json::parse(&std::fs::read_to_string(&report_path).unwrap()).unwrap();
    assert_eq!(
        report.get("entries").and_then(sim_core::Json::as_u64),
        Some(9),
        "report artifact must carry the committed-cell count"
    );

    // One more pass, store-served end to end with compaction: every
    // cell comes from the store without simulation.
    let out = base_cmd(&chaos_dir)
        .arg("--store")
        .arg(&store_path)
        .env("BENCH_STORE_COMPACT", "1")
        .output()
        .unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "{stderr}");
    assert!(stderr.contains("result store served 9 cell(s)"), "{stderr}");
    assert!(stderr.contains("store compacted"), "{stderr}");
    assert!(
        stderr.contains("0 ran, 0 skipped (resume), 0 failed"),
        "{stderr}"
    );

    let _ = std::fs::remove_dir_all(&golden_dir);
    let _ = std::fs::remove_dir_all(&chaos_dir);
}
