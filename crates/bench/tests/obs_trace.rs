//! Observability-layer integration tests: the golden interval time
//! series for the smoke workload, byte-identical trace artifacts at any
//! worker-thread count, schema validation of the `obs.jsonl` the real
//! `run_all --trace-dir` binary emits, a deterministic Table 3 case
//! sequence across runs, and the `--filter`-matches-nothing usage error.
//!
//! To regenerate the golden time series after an *intentional*
//! behaviour change:
//!
//! ```sh
//! BENCH_UPDATE_GOLDEN=1 cargo test -p bench --test obs_trace
//! ```

#![allow(clippy::unwrap_used)]

use std::path::{Path, PathBuf};
use std::process::Command;

use bench::{Lab, Manifest, SweepOptions, SweepPlan};
use ecdp::system::{CompilerArtifacts, SystemBuilder, SystemKind};
use sim_core::{Json, MachineConfig, ObsConfig, ThrottleDecision};
use workloads::{registry, InputSet};

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/smoke_timeseries.json")
}

/// Temp dir unique to this test process, cleaned by the caller.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bench-obs-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Structural JSON comparison: integers exact, floats at 1e-9 relative
/// tolerance (they round-trip through the text format).
fn assert_json_close(golden: &Json, got: &Json, path: &str) {
    match (golden, got) {
        (Json::Num(a), Json::Num(b)) => {
            let tol = 1e-9 * a.abs().max(b.abs()).max(1.0);
            assert!(
                (a - b).abs() <= tol,
                "{path}: drifted from golden {a} to {b}"
            );
        }
        (Json::Arr(a), Json::Arr(b)) => {
            assert_eq!(a.len(), b.len(), "{path}: array length");
            for (i, (ga, gb)) in a.iter().zip(b).enumerate() {
                assert_json_close(ga, gb, &format!("{path}[{i}]"));
            }
        }
        (Json::Obj(a), Json::Obj(b)) => {
            assert_eq!(
                a.iter().map(|(k, _)| k).collect::<Vec<_>>(),
                b.iter().map(|(k, _)| k).collect::<Vec<_>>(),
                "{path}: object keys"
            );
            for ((k, ga), (_, gb)) in a.iter().zip(b) {
                assert_json_close(ga, gb, &format!("{path}.{k}"));
            }
        }
        _ => assert_eq!(golden, got, "{path}"),
    }
}

/// The interval time series of the smoke workload must reproduce the
/// checked-in snapshot: this pins the sampler itself (deltas, IPC, bus
/// occupancy, per-prefetcher slices) the way `tests/golden/smoke.json`
/// pins end-of-run aggregates. `mst` on the hybrid stream+CDP system is
/// the one smoke cell whose test input spans several default-size
/// intervals.
#[test]
fn smoke_timeseries_matches_golden_snapshot() {
    let lab = Lab::new();
    let (stats, trace) = lab
        .try_run_traced("mst", InputSet::Test, SystemKind::StreamCdp)
        .expect("smoke cell runs");
    assert_eq!(
        trace.samples.len() as u64,
        stats.intervals,
        "one sample per completed interval"
    );
    assert!(
        !trace.samples.is_empty(),
        "the smoke cell must span at least one interval for the golden \
         comparison to mean anything"
    );
    let doc = trace.timeseries_json();

    let path = golden_path();
    if std::env::var_os("BENCH_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, doc.to_string_pretty()).unwrap();
        eprintln!("updated golden time series at {}", path.display());
        return;
    }
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden time series {} ({e}); run with BENCH_UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    let golden = Json::parse(&text).expect("golden time series parses");
    assert_json_close(&golden, &doc, "timeseries");
}

/// Traced sweeps must emit byte-identical artifacts at any worker-thread
/// count: the 1-job and 4-job runs of the same plan produce the same
/// `timeseries.json` and `obs.jsonl` for every cell.
#[test]
fn traced_artifacts_are_identical_at_any_thread_count() {
    let plan = || {
        SweepPlan::cross(
            "obs-det",
            &["mst", "health", "libquantum"],
            InputSet::Test,
            &[SystemKind::StreamCdp, SystemKind::StreamEcdpThrottled],
        )
    };
    let run = |dir: &Path, jobs: usize| {
        // Fresh lab each time so nothing is shared between the two runs.
        let exec = plan().run_fault_tolerant(
            &Lab::new(),
            jobs,
            &SweepOptions {
                trace_dir: Some(dir),
                ..SweepOptions::default()
            },
        );
        assert_eq!(exec.failed(), 0);
    };
    let base = scratch("det");
    let (d1, d4) = (base.join("j1"), base.join("j4"));
    run(&d1, 1);
    run(&d4, 4);

    for cell in &plan().cells {
        let rel = format!(
            "{}-{}-{}",
            cell.workload,
            cell.input_label(),
            cell.system.label()
        );
        for file in ["timeseries.json", "obs.jsonl"] {
            let a = std::fs::read(d1.join(&rel).join(file)).unwrap();
            let b = std::fs::read(d4.join(&rel).join(file)).unwrap();
            assert_eq!(a, b, "{rel}/{file} differs between 1 and 4 jobs");
        }
    }
    let _ = std::fs::remove_dir_all(&base);
}

/// Validates one `obs.jsonl` document against schema v1: a leading
/// `meta` line, `throttle`/`lifecycle` event lines, and a trailing
/// `summary` whose counts match the document.
fn validate_obs_jsonl(text: &str) {
    let lines: Vec<Json> = text
        .lines()
        .enumerate()
        .map(|(i, l)| Json::parse(l).unwrap_or_else(|e| panic!("line {}: {e}: {l}", i + 1)))
        .collect();
    assert!(lines.len() >= 2, "at least meta + summary");

    let field = |j: &Json, k: &str| -> Json {
        j.get(k)
            .unwrap_or_else(|| panic!("missing field {k:?} in {}", j.to_string_compact()))
            .clone()
    };
    let num = |j: &Json, k: &str| -> f64 {
        field(j, k)
            .as_f64()
            .unwrap_or_else(|| panic!("{k} not a number"))
    };
    let int = |j: &Json, k: &str| -> u64 {
        field(j, k)
            .as_u64()
            .unwrap_or_else(|| panic!("{k} not an integer"))
    };
    let s = |j: &Json, k: &str| -> String {
        field(j, k)
            .as_str()
            .unwrap_or_else(|| panic!("{k} not a string"))
            .to_string()
    };

    let meta = &lines[0];
    assert_eq!(s(meta, "type"), "meta");
    assert_eq!(int(meta, "schema_version"), sim_core::OBS_SCHEMA_VERSION);
    for k in ["workload", "input", "system", "config_hash"] {
        assert!(!s(meta, k).is_empty(), "meta.{k} must be non-empty");
    }

    let mut throttles = 0u64;
    let mut lifecycles = 0u64;
    for line in &lines[1..lines.len() - 1] {
        match s(line, "type").as_str() {
            "throttle" => {
                throttles += 1;
                int(line, "interval");
                assert!(int(line, "prefetcher") < 8);
                assert!(int(line, "case") <= 5, "Table 3 has five cases");
                for k in ["accuracy", "coverage", "rival_coverage"] {
                    let v = num(line, k);
                    assert!((0.0..=1.0).contains(&v), "{k}={v} out of range");
                }
                assert!(
                    ["up", "down", "keep"].contains(&s(line, "decision").as_str()),
                    "bad decision"
                );
                for k in ["from_level", "to_level"] {
                    assert!((1..=4).contains(&int(line, k)), "{k} out of range");
                }
            }
            "lifecycle" => {
                lifecycles += 1;
                int(line, "cycle");
                assert!(
                    ["issued", "filled", "used", "evicted"].contains(&s(line, "stage").as_str()),
                    "bad stage"
                );
                int(line, "addr");
                assert!(matches!(field(line, "late"), Json::Bool(_)));
            }
            other => panic!("unexpected event type {other:?}"),
        }
    }

    let summary = lines.last().unwrap();
    assert_eq!(s(summary, "type"), "summary");
    assert_eq!(int(summary, "transitions"), throttles);
    assert_eq!(int(summary, "lifecycle_events"), lifecycles);
    int(summary, "intervals");
    int(summary, "transitions_dropped");
    int(summary, "lifecycle_dropped");
}

/// Drives the real `run_all` binary with `--trace-dir`: the smoke cell
/// must emit a schema-valid `obs.jsonl` plus a `timeseries.json`, and
/// the manifest must record both artifact paths. This is the check the
/// CI trace job runs.
#[test]
fn run_all_trace_dir_emits_schema_valid_artifacts() {
    let base = scratch("cli");
    let trace_dir = base.join("traces");
    let out = Command::new(env!("CARGO_BIN_EXE_run_all"))
        .args(["--sweep", "--jobs", "2", "--trace-dir"])
        .arg(&trace_dir)
        .env("BENCH_LAB_DIR", &base)
        .env("BENCH_SWEEP_WORKLOADS", "mst")
        .env("BENCH_SWEEP_SYSTEMS", "stream+cdp")
        .env("BENCH_SWEEP_INPUT", "test")
        .env_remove("BENCH_FAULT_PLAN")
        .output()
        .expect("run_all spawns");
    assert!(
        out.status.success(),
        "traced sweep must succeed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let cell = trace_dir.join("mst-test-stream+cdp");
    let jsonl = std::fs::read_to_string(cell.join("obs.jsonl")).expect("obs.jsonl written");
    validate_obs_jsonl(&jsonl);
    let ts = Json::parse(&std::fs::read_to_string(cell.join("timeseries.json")).unwrap())
        .expect("timeseries.json parses");
    assert_eq!(
        ts.get("schema_version").and_then(Json::as_u64),
        Some(sim_core::OBS_SCHEMA_VERSION)
    );
    assert!(
        !ts.get("intervals")
            .and_then(Json::as_arr)
            .unwrap()
            .is_empty(),
        "the smoke cell spans at least one interval"
    );

    // The manifest's success record carries the artifact paths.
    let manifest =
        Manifest::parse(&std::fs::read_to_string(base.join("run_all.json")).unwrap()).unwrap();
    let record = manifest.successes().next().expect("one success record");
    assert_eq!(
        record.timeseries_path.as_deref(),
        cell.join("timeseries.json").to_str()
    );
    assert_eq!(record.obs_path.as_deref(), cell.join("obs.jsonl").to_str());
    let _ = std::fs::remove_dir_all(&base);
}

/// The coordinated throttle's Table 3 case sequence must be identical
/// across independent runs, and every recorded transition must be
/// self-consistent: a valid case number, a decision matching that case's
/// column in Table 3, and a level step matching the decision.
#[test]
fn table3_case_sequence_is_deterministic_and_self_consistent() {
    let t = registry::lookup("mst").unwrap().generate(InputSet::Test);
    let artifacts = CompilerArtifacts::empty();
    // Shrink the L2 and interval so the short test input spans many
    // sampling intervals (same knobs as the sim-core obs tests).
    let mut cfg = MachineConfig::default();
    cfg.l2.bytes = 64 * 1024;
    cfg.interval_evictions = 128;
    let run = || {
        SystemBuilder::new(SystemKind::StreamEcdpThrottled)
            .artifacts(&artifacts)
            .config(cfg.clone())
            .observe(ObsConfig::enabled())
            .run(&t)
            .expect("run")
            .trace
            .expect("trace requested")
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "traces must be identical across runs");
    assert!(
        !a.transitions.is_empty(),
        "the throttled run must record transitions"
    );
    for tr in &a.transitions {
        assert!((1..=5).contains(&tr.case), "Table 3 case out of range");
        let expected = match tr.case {
            1 | 3 => ThrottleDecision::Up,
            2 | 4 => ThrottleDecision::Down,
            _ => ThrottleDecision::Keep,
        };
        assert_eq!(
            tr.decision, expected,
            "case {} decided {:?} at interval {}",
            tr.case, tr.decision, tr.interval
        );
        // The level steps by at most one in the decision's direction
        // (equal on saturation or Keep).
        let (from, to) = (tr.from_level.index(), tr.to_level.index());
        match tr.decision {
            ThrottleDecision::Up => assert!(to == from + 1 || (to == from && from == 3)),
            ThrottleDecision::Down => assert!(to + 1 == from || (to == from && from == 0)),
            ThrottleDecision::Keep => assert_eq!(to, from),
        }
    }
}

/// `--filter` matching no sweep cell is a usage error (exit 2), not a
/// silent empty-manifest success.
#[test]
fn run_all_filter_matching_no_cells_exits_2() {
    let out = Command::new(env!("CARGO_BIN_EXE_run_all"))
        .args(["--sweep", "--filter", "no-such-cell-zzz"])
        .env("BENCH_SWEEP_WORKLOADS", "mst")
        .env("BENCH_SWEEP_SYSTEMS", "stream")
        .env("BENCH_SWEEP_INPUT", "test")
        .output()
        .expect("run_all spawns");
    assert_eq!(
        out.status.code(),
        Some(2),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("no cells matched"),
        "must say why it refused: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}
