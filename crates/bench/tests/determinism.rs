//! Determinism regression tests for the parallel sweep executor: the
//! same [`SweepPlan`] must produce byte-identical [`RunRecord`]s (modulo
//! the `wall_ms` timing field) at any worker-thread count, and shared
//! inputs must be computed exactly once per process.

#![allow(clippy::unwrap_used)]

use std::sync::Arc;

use bench::{Lab, SweepPlan};
use ecdp::system::SystemKind;
use workloads::InputSet;

fn smoke_plan(name: &str) -> SweepPlan {
    SweepPlan::cross(
        name,
        &["mst", "health", "libquantum"],
        InputSet::Test,
        &[
            SystemKind::StreamOnly,
            SystemKind::StreamCdp,
            SystemKind::StreamEcdpThrottled,
        ],
    )
}

#[test]
fn parallel_sweep_matches_serial_sweep() {
    // Fresh labs so the second run cannot reuse the first run's cache.
    let serial = smoke_plan("det-serial").run(&Lab::new(), 1);
    let parallel = smoke_plan("det-parallel").run(&Lab::new(), 4);

    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert!(
            s.same_metrics(p),
            "{} {} {} diverged between 1 and 4 jobs",
            s.workload,
            s.input,
            s.system
        );
    }

    // Stronger: with wall time normalized, the serialized records are
    // byte-identical.
    let normalize = |records: &[bench::RunRecord]| -> Vec<String> {
        records
            .iter()
            .map(|r| {
                let mut r = r.clone();
                r.wall_ms = 0.0;
                r.to_json().to_string_pretty()
            })
            .collect()
    };
    assert_eq!(normalize(&serial), normalize(&parallel));
}

#[test]
fn sweep_results_come_back_in_plan_order() {
    let plan = smoke_plan("det-order");
    let records = plan.run(&Lab::new(), 3);
    assert_eq!(records.len(), plan.cells.len());
    for (cell, record) in plan.cells.iter().zip(&records) {
        assert_eq!(record.workload, cell.workload);
        assert_eq!(record.input, format!("{:?}", cell.input).to_lowercase());
        assert_eq!(record.system, cell.system.label());
    }
}

#[test]
fn duplicate_cells_share_one_simulation() {
    let mut plan = SweepPlan::new("det-dup");
    for _ in 0..4 {
        plan.push("libquantum", InputSet::Test, SystemKind::StreamOnly);
    }
    let lab = Lab::new();
    let records = plan.run(&lab, 4);
    assert_eq!(records.len(), 4);
    // All four cells are the same cached run: identical wall_ms proves a
    // single simulation was timed (same_metrics alone would also hold for
    // four separate deterministic runs).
    for r in &records[1..] {
        assert_eq!(r.wall_ms, records[0].wall_ms);
        assert!(r.same_metrics(&records[0]));
    }
}

#[test]
fn traces_and_profiles_are_computed_once_per_process() {
    let lab = Lab::new();
    let a = lab.trace("libquantum", InputSet::Test);
    let b = lab.trace("libquantum", InputSet::Test);
    assert!(Arc::ptr_eq(&a, &b), "trace must be generated once");
    let pa = lab.profile("libquantum");
    let pb = lab.clone().profile("libquantum");
    assert!(
        Arc::ptr_eq(&pa, &pb),
        "profile must be shared across lab clones"
    );
}
