//! Randomized crash/corruption campaign for the persistent result store.
//!
//! Difftest-style: a seeded [`StdRng`] drives rounds of appends followed
//! by byte-level damage — mid-payload corruption, torn tails, truncation
//! at arbitrary cut points — against a shadow model that knows exactly
//! which committed records must survive. Because appends are serial and
//! the test measures the file length around each one, every damage
//! operation maps to an exactly computable expected-survivor set: a
//! record is lost if and only if its own frame was hit. After every
//! round the store is reopened (running real startup recovery), checked
//! against the model, reopened again to prove the heal left a clean log,
//! and occasionally compacted.
//!
//! The acceptance property of the whole suite: recovery never loses a
//! committed-and-undamaged record, never resurrects a damaged one, and
//! compaction preserves the live set byte-for-byte.

#![allow(clippy::unwrap_used)]

use std::collections::HashMap;
use std::path::PathBuf;

use bench::{ResultStore, RunRecord};
use ecdp::system::SystemKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sim_core::RunStats;
use workloads::InputSet;

/// Store file header: 8-byte magic + version u32 + schema u32.
const HEADER_LEN: u64 = 16;

/// Record framing before the payload: magic + length + crc, u32 each.
const FRAME_LEN: u64 = 12;

const WORKLOAD_POOL: [&str; 6] = ["mst", "health", "em3d", "bh", "tsp", "perimeter"];

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ecdp-store-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A record distinguished by its `wall_ms` tag (the stats are fixed, so
/// only the tag tells two generations of the same cell apart).
fn record(workload: &str, tag: u64) -> RunRecord {
    let stats = RunStats {
        cycles: 10_000,
        retired_instructions: 321,
        ..RunStats::default()
    };
    RunRecord::new(
        workload,
        InputSet::Test,
        SystemKind::StreamOnly,
        &stats,
        tag as f64,
    )
}

/// One append this round, with its on-disk frame range.
struct Appended {
    workload: &'static str,
    tag: u64,
    /// First byte of the record frame.
    start: u64,
    /// One past the last byte of the record frame.
    end: u64,
    /// Cleared when damage hits this frame.
    alive: bool,
}

fn file_len(path: &PathBuf) -> u64 {
    std::fs::metadata(path).map(|m| m.len()).unwrap_or(0)
}

/// Asserts the reopened store serves exactly the model's committed set.
fn assert_matches_model(store: &ResultStore, committed: &HashMap<&'static str, u64>) {
    assert_eq!(
        store.len(),
        committed.len(),
        "store entries vs model: {:?}",
        store.recovery()
    );
    for (&workload, &tag) in committed {
        let r = store
            .get(
                workload,
                "test",
                SystemKind::StreamOnly.label(),
                bench::config_hash(),
            )
            .unwrap_or_else(|| panic!("committed record {workload} (tag {tag}) was lost"));
        assert!(
            (r.wall_ms - tag as f64).abs() < 1e-9,
            "{workload}: served tag {} instead of {tag}",
            r.wall_ms
        );
    }
}

/// Runs one seeded campaign: `rounds` rounds of append + damage +
/// recover + verify against the shadow model.
fn run_campaign(seed: u64, rounds: usize) {
    let dir = scratch(&format!("seed{seed}"));
    let path = dir.join("results.store");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut committed: HashMap<&'static str, u64> = HashMap::new();
    let mut next_tag = 0u64;

    for round in 0..rounds {
        let store = ResultStore::open(&path);
        assert_matches_model(&store, &committed);

        // Serial appends with exact frame ranges.
        let n_appends = rng.gen_range(2usize..=5);
        let mut appends: Vec<Appended> = Vec::with_capacity(n_appends);
        for _ in 0..n_appends {
            let workload = WORKLOAD_POOL[rng.gen_range(0..WORKLOAD_POOL.len())];
            next_tag += 1;
            let before = file_len(&path);
            let start = if before == 0 { HEADER_LEN } else { before };
            store.append(&record(workload, next_tag), None);
            assert!(store.degraded().is_none(), "clean appends never degrade");
            appends.push(Appended {
                workload,
                tag: next_tag,
                start,
                end: file_len(&path),
                alive: true,
            });
        }
        drop(store);

        // Damage the log. Every operation targets a frame appended this
        // round, so the survivor set is exact: baseline frames from
        // earlier rounds are never touched.
        let mode = rng.gen_range(0u32..4);
        let mut damaged = false;
        if mode == 2 || mode == 3 {
            // Truncate inside (or exactly at the start of) one frame —
            // a crash mid-append, or mid-rewrite of everything after it.
            let i = rng.gen_range(0..appends.len());
            let cut = rng.gen_range(appends[i].start..appends[i].end);
            let bytes = std::fs::read(&path).unwrap();
            std::fs::write(&path, &bytes[..cut as usize]).unwrap();
            for a in &mut appends[i..] {
                a.alive = false;
            }
            damaged = true;
        }
        if mode == 1 || mode == 3 {
            // Flip a mid-payload byte of one still-present frame; the
            // per-record CRC must quarantine exactly that record.
            let survivors: Vec<usize> = appends
                .iter()
                .enumerate()
                .filter(|(_, a)| a.alive)
                .map(|(i, _)| i)
                .collect();
            if let Some(&i) = survivors.get(rng.gen_range(0..survivors.len().max(1))) {
                let a = &mut appends[i];
                let payload_mid = a.start + FRAME_LEN + (a.end - a.start - FRAME_LEN) / 2;
                let mut bytes = std::fs::read(&path).unwrap();
                bytes[payload_mid as usize] ^= 0xFF;
                std::fs::write(&path, &bytes).unwrap();
                a.alive = false;
                damaged = true;
            }
        }

        // Fold the surviving appends into the model (later wins; a lost
        // re-append falls back to the previous committed generation,
        // whose frame is still in the log).
        for a in appends.iter().filter(|a| a.alive) {
            committed.insert(a.workload, a.tag);
        }

        // Reopen: recovery must land exactly on the model.
        let store = ResultStore::open(&path);
        let recovery = store.recovery();
        assert_matches_model(&store, &committed);
        if damaged {
            assert!(
                !recovery.is_clean(),
                "round {round}: damage must be reported: {recovery:?}"
            );
            assert!(recovery.healed, "round {round}: {recovery:?}");
        }
        assert!(store.degraded().is_none(), "recovery never degrades");
        drop(store);

        // The heal rewrote a clean log.
        let store = ResultStore::open(&path);
        assert!(
            store.recovery().is_clean(),
            "round {round}: heal left damage behind: {:?}",
            store.recovery()
        );

        // Occasionally compact and verify nothing is dropped.
        if rng.gen_bool(0.3) {
            let stats = store.compact().unwrap();
            assert_eq!(stats.live_records, committed.len());
            drop(store);
            let store = ResultStore::open(&path);
            assert!(store.recovery().is_clean());
            assert_matches_model(&store, &committed);
        }
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn seeded_damage_campaign_seed_1() {
    run_campaign(1, 8);
}

#[test]
fn seeded_damage_campaign_seed_2() {
    run_campaign(2, 8);
}

#[test]
fn seeded_damage_campaign_seed_3() {
    run_campaign(3, 8);
}

/// The worst-case compound round, pinned deterministically: a corrupt
/// record *and* a torn tail in the same log, with a re-append of a
/// damaged cell — recovery must serve the older generation.
#[test]
fn compound_damage_serves_the_previous_generation() {
    let dir = scratch("compound");
    let path = dir.join("results.store");

    let store = ResultStore::open(&path);
    let mut ranges = Vec::new();
    for (workload, tag) in [("mst", 1u64), ("health", 2), ("mst", 3), ("em3d", 4)] {
        let before = file_len(&path);
        let start = if before == 0 { HEADER_LEN } else { before };
        store.append(&record(workload, tag), None);
        ranges.push((start, file_len(&path)));
    }
    drop(store);

    // Corrupt the mst re-append (generation 3) and tear the em3d tail.
    let mut bytes = std::fs::read(&path).unwrap();
    let (start, end) = ranges[2];
    bytes[(start + FRAME_LEN + (end - start - FRAME_LEN) / 2) as usize] ^= 0xFF;
    let (tail_start, tail_end) = ranges[3];
    bytes.truncate((tail_start + (tail_end - tail_start) / 2) as usize);
    std::fs::write(&path, &bytes).unwrap();

    let store = ResultStore::open(&path);
    let recovery = store.recovery();
    assert_eq!(recovery.quarantined(), 1, "{recovery:?}");
    assert!(recovery.healed);
    assert_eq!(store.len(), 2, "mst (gen 1) + health survive");
    let mst = store
        .get("mst", "test", "stream", bench::config_hash())
        .expect("older mst generation survives the corrupt re-append");
    assert!((mst.wall_ms - 1.0).abs() < 1e-9, "generation 1 is served");
    assert!(store
        .get("em3d", "test", "stream", bench::config_hash())
        .is_none());

    let _ = std::fs::remove_dir_all(&dir);
}
