//! End-to-end workload-frontend test: user-supplied `.wl` specs and
//! `.xtrc` binary traces driven through the real `run_all` binary.
//!
//! Covers the bring-your-own-workload contract:
//!
//! * `--workload-file` loads both formats and, with no explicit workload
//!   list, the sweep grid is exactly the loaded workloads;
//! * success records carry the provenance `workload_hash` and the
//!   deterministic stats are byte-identical across re-runs;
//! * a second run against the same result store is served entirely from
//!   the store (`store: "hit"`);
//! * malformed specs and unknown `--filter` names exit 2 with pointed
//!   diagnostics (line/column, did-you-mean).

#![allow(clippy::unwrap_used)]

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

use bench::Manifest;
use sim_core::{OpKind, TraceOp, XtraceWriter, NO_DEP};
use sim_mem::SimMemory;

const SPEC: &str = "\
workload frontier {
    seed 11;
    node Node { size 24; ptr next @ 16; field data @ 0; }
    chain items: Node { count 200; layout shuffled; }
    traverse items { order forward; repeat 2; visit { load data; compute 6; } }
}
";

/// A scratch directory under the target tmpdir, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("ecdp-frontend-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Writes a small but non-trivial binary external trace: a pointer
/// chase through 64 chained cells with compute bursts in between.
fn write_xtrc(path: &Path) {
    let mut mem = SimMemory::new();
    let base = 0x4000_0000u32;
    let cells = 64u32;
    for i in 0..cells {
        let addr = base + i * 0x40;
        let next = if i + 1 < cells {
            base + (i + 1) * 0x40
        } else {
            0
        };
        mem.write_u32(addr, next);
    }
    let file = std::fs::File::create(path).unwrap();
    let mut w = XtraceWriter::new(std::io::BufWriter::new(file), &mem).unwrap();
    let mut prev = NO_DEP;
    for i in 0..cells {
        let addr = base + i * 0x40;
        let next = if i + 1 < cells {
            base + (i + 1) * 0x40
        } else {
            0
        };
        w.push(&TraceOp {
            pc: 0x2000,
            addr,
            value: next,
            dep: prev,
            kind: OpKind::Load,
            lds: true,
        })
        .unwrap();
        prev = i * 2; // op index of the load just pushed (load, compute pairs)
        w.push(&TraceOp {
            pc: 0,
            addr: 0,
            value: 48,
            dep: NO_DEP,
            kind: OpKind::Compute,
            lds: false,
        })
        .unwrap();
    }
    w.finish().unwrap();
}

fn run_all(dir: &Path, args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_run_all"))
        .current_dir(dir)
        // One cheap system keeps the grid small; the request layer turns
        // this into the authoritative config exactly as a user would.
        .env("BENCH_SWEEP_SYSTEMS", "stream")
        .args(args)
        .output()
        .expect("spawn run_all")
}

fn manifest(dir: &Path) -> Manifest {
    let path = dir.join("target/lab/run_all.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("no manifest at {}: {e}", path.display()));
    Manifest::parse(&text).expect("valid manifest")
}

#[test]
fn wl_and_xtrc_files_run_end_to_end_with_store_and_provenance() {
    let scratch = Scratch::new("e2e");
    let dir = scratch.path();
    std::fs::write(dir.join("frontier.wl"), SPEC).unwrap();
    write_xtrc(&dir.join("extstream.xtrc"));

    let args = [
        "--sweep",
        "--workload-file",
        "frontier.wl",
        "--workload-file",
        "extstream.xtrc",
        "--store",
        "store.json",
    ];
    let first = run_all(dir, &args);
    assert!(
        first.status.success(),
        "first run failed: {}",
        String::from_utf8_lossy(&first.stderr)
    );
    let m1 = manifest(dir);
    let mut names: Vec<&str> = m1.successes().map(|r| r.workload.as_str()).collect();
    names.sort_unstable();
    assert_eq!(
        names,
        ["extstream", "frontier"],
        "the grid must be exactly the loaded workloads"
    );
    for r in m1.successes() {
        assert_eq!(
            r.workload_hash.as_ref().map(String::len),
            Some(16),
            "loaded workload {} must carry a 16-hex provenance hash",
            r.workload
        );
        assert_ne!(r.store.as_deref(), Some("hit"), "first run cannot hit");
    }

    // Re-run against the same store: byte-identical stats, all cells
    // served from the store.
    let second = run_all(dir, &args);
    assert!(
        second.status.success(),
        "second run failed: {}",
        String::from_utf8_lossy(&second.stderr)
    );
    let m2 = manifest(dir);
    assert_eq!(m2.successes().count(), m1.successes().count());
    for (a, b) in m1.successes().zip(m2.successes()) {
        assert!(
            a.same_metrics(b),
            "stats diverged across re-runs for {}",
            a.workload
        );
        assert_eq!(
            b.store.as_deref(),
            Some("hit"),
            "second submission of {} must be served from the result store",
            b.workload
        );
    }

    // Editing the spec invalidates the store entry: the changed cell
    // re-simulates instead of inheriting the stale result.
    std::fs::write(
        dir.join("frontier.wl"),
        SPEC.replace("count 200", "count 150"),
    )
    .unwrap();
    let third = run_all(dir, &args);
    assert!(
        third.status.success(),
        "third run failed: {}",
        String::from_utf8_lossy(&third.stderr)
    );
    for r in manifest(dir).successes() {
        match r.workload.as_str() {
            "frontier" => {
                assert_ne!(r.store.as_deref(), Some("hit"), "stale spec must re-run");
            }
            "extstream" => assert_eq!(r.store.as_deref(), Some("hit")),
            other => panic!("unexpected workload {other}"),
        }
    }
}

#[test]
fn malformed_spec_exits_2_with_line_and_column() {
    let scratch = Scratch::new("badspec");
    let dir = scratch.path();
    std::fs::write(
        dir.join("bad.wl"),
        "workload w {\n  nodes N { size 8; }\n}\n",
    )
    .unwrap();
    let out = run_all(dir, &["--sweep", "--workload-file", "bad.wl"]);
    assert_eq!(out.status.code(), Some(2), "usage errors exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("line 2, column 3") && stderr.contains("unknown workload statement"),
        "diagnostic must carry position and field name, got: {stderr}"
    );
}

#[test]
fn unknown_filter_name_exits_2_with_suggestion() {
    let scratch = Scratch::new("filter");
    let dir = scratch.path();
    let out = run_all(dir, &["--sweep", "--filter", "libquantm"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("did you mean \"libquantum\"?"),
        "expected a did-you-mean from the registry, got: {stderr}"
    );
}
