//! Golden-stats regression test: a small fixed sweep through the
//! parallel executor must reproduce the checked-in snapshot in
//! `tests/golden/smoke.json` (repo root) within tight tolerances.
//!
//! The simulator is fully deterministic, so integer counters must match
//! exactly; derived floats (IPC, BPKI, accuracy, coverage) are compared
//! at 1e-9 relative tolerance to allow for their round-trip through the
//! JSON text format.
//!
//! To regenerate after an *intentional* behaviour change:
//!
//! ```sh
//! BENCH_UPDATE_GOLDEN=1 cargo test -p bench --test golden_stats
//! ```

use std::path::PathBuf;

use bench::{Lab, Manifest, RunRecord, SweepPlan};
use ecdp::system::SystemKind;
use workloads::InputSet;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/smoke.json")
}

/// The pinned sweep: three contrasting workloads (CDP-hostile `mst`,
/// CDP-friendly `health`, streaming `libquantum`) across the baseline,
/// unfiltered CDP and the full proposal.
fn golden_plan() -> SweepPlan {
    SweepPlan::cross(
        "golden-smoke",
        &["mst", "health", "libquantum"],
        InputSet::Test,
        &[
            SystemKind::StreamOnly,
            SystemKind::StreamCdp,
            SystemKind::StreamEcdpThrottled,
        ],
    )
}

fn close(a: f64, b: f64, what: &str, ctx: &str) {
    let tol = 1e-9 * a.abs().max(b.abs()).max(1.0);
    assert!(
        (a - b).abs() <= tol,
        "{ctx}: {what} drifted from golden {a} to {b}"
    );
}

#[test]
fn sweep_matches_golden_snapshot() {
    let mut records = golden_plan().run(&Lab::new(), 2);
    // Zero the only nondeterministic field so an update writes a clean,
    // reviewable diff.
    for r in &mut records {
        r.wall_ms = 0.0;
    }

    let path = golden_path();
    if std::env::var_os("BENCH_UPDATE_GOLDEN").is_some() {
        let manifest = Manifest {
            name: "golden-smoke".to_string(),
            records,
        };
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, manifest.to_json().to_string_pretty()).unwrap();
        eprintln!("updated golden snapshot at {}", path.display());
        return;
    }

    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); run with BENCH_UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    let golden = Manifest::parse(&text).expect("golden snapshot parses");
    assert_eq!(
        golden.records.len(),
        records.len(),
        "golden snapshot has a different cell count; regenerate it"
    );

    for (g, r) in golden.records.iter().zip(&records) {
        let ctx = format!("{} {} {}", r.workload, r.input, r.system);
        assert_eq!(g.workload, r.workload);
        assert_eq!(g.input, r.input);
        assert_eq!(g.system, r.system);
        assert_eq!(
            g.config_hash, r.config_hash,
            "{ctx}: machine configuration changed since the snapshot; \
             verify the change is intentional and regenerate the golden file"
        );
        compare_stats(g, r, &ctx);
    }
}

fn compare_stats(g: &RunRecord, r: &RunRecord, ctx: &str) {
    // Integer counters: the simulator is deterministic, so exact.
    assert_eq!(g.stats.cycles, r.stats.cycles, "{ctx}: cycles");
    assert_eq!(
        g.stats.retired_instructions, r.stats.retired_instructions,
        "{ctx}: retired_instructions"
    );
    assert_eq!(
        g.stats.l2_demand_accesses, r.stats.l2_demand_accesses,
        "{ctx}: l2_demand_accesses"
    );
    assert_eq!(
        g.stats.l2_demand_misses, r.stats.l2_demand_misses,
        "{ctx}: l2_demand_misses"
    );
    assert_eq!(
        g.stats.l2_lds_misses, r.stats.l2_lds_misses,
        "{ctx}: l2_lds_misses"
    );
    assert_eq!(
        g.stats.bus_transfers, r.stats.bus_transfers,
        "{ctx}: bus_transfers"
    );
    assert_eq!(g.stats.writebacks, r.stats.writebacks, "{ctx}: writebacks");

    // Derived floats: tight relative tolerance.
    close(g.stats.ipc, r.stats.ipc, "ipc", ctx);
    close(g.stats.bpki, r.stats.bpki, "bpki", ctx);
    close(g.stats.mpki, r.stats.mpki, "mpki", ctx);

    assert_eq!(
        g.stats.prefetchers.len(),
        r.stats.prefetchers.len(),
        "{ctx}: prefetcher count"
    );
    for (gp, rp) in g.stats.prefetchers.iter().zip(&r.stats.prefetchers) {
        let pctx = format!("{ctx} / {}", rp.name);
        assert_eq!(gp.name, rp.name, "{pctx}: name");
        assert_eq!(gp.issued, rp.issued, "{pctx}: issued");
        assert_eq!(gp.used, rp.used, "{pctx}: used");
        assert_eq!(gp.late, rp.late, "{pctx}: late");
        assert_eq!(gp.pollution, rp.pollution, "{pctx}: pollution");
        assert_eq!(
            gp.unused_evicted, rp.unused_evicted,
            "{pctx}: unused_evicted"
        );
        close(gp.accuracy, rp.accuracy, "accuracy", &pctx);
        close(gp.coverage, rp.coverage, "coverage", &pctx);
    }
}
