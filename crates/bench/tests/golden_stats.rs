//! Golden-stats regression test: a small fixed sweep through the
//! parallel executor must reproduce the checked-in snapshot in
//! `tests/golden/smoke.json` (repo root) within tight tolerances.
//!
//! The simulator is fully deterministic, so integer counters must match
//! exactly; derived floats (IPC, BPKI, accuracy, coverage) are compared
//! at 1e-9 relative tolerance to allow for their round-trip through the
//! JSON text format.
//!
//! To regenerate after an *intentional* behaviour change:
//!
//! ```sh
//! BENCH_UPDATE_GOLDEN=1 cargo test -p bench --test golden_stats
//! ```

#![allow(clippy::unwrap_used)]

use std::path::PathBuf;

use bench::{
    CheckpointConfig, FailureRecord, FaultPlan, Lab, Manifest, RunOutcome, RunRecord, SweepPlan,
};
use ecdp::system::SystemKind;
use workloads::InputSet;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/smoke.json")
}

/// The pinned sweep: three contrasting workloads (CDP-hostile `mst`,
/// CDP-friendly `health`, streaming `libquantum`) across the baseline,
/// unfiltered CDP and the full proposal.
fn golden_plan() -> SweepPlan {
    SweepPlan::cross(
        "golden-smoke",
        &["mst", "health", "libquantum"],
        InputSet::Test,
        &[
            SystemKind::StreamOnly,
            SystemKind::StreamCdp,
            SystemKind::StreamEcdpThrottled,
        ],
    )
}

fn close(a: f64, b: f64, what: &str, ctx: &str) {
    let tol = 1e-9 * a.abs().max(b.abs()).max(1.0);
    assert!(
        (a - b).abs() <= tol,
        "{ctx}: {what} drifted from golden {a} to {b}"
    );
}

#[test]
fn sweep_matches_golden_snapshot() {
    let mut records = golden_plan().run(&Lab::new(), 2);
    // Zero the only nondeterministic field so an update writes a clean,
    // reviewable diff.
    for r in &mut records {
        r.wall_ms = 0.0;
    }

    let path = golden_path();
    if std::env::var_os("BENCH_UPDATE_GOLDEN").is_some() {
        let manifest = Manifest {
            name: "golden-smoke".to_string(),
            records: records.into_iter().map(RunOutcome::Success).collect(),
        };
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, manifest.to_json().to_string_pretty()).unwrap();
        eprintln!("updated golden snapshot at {}", path.display());
        return;
    }

    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); run with BENCH_UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    let golden = Manifest::parse(&text).expect("golden snapshot parses");
    let golden_records: Vec<&RunRecord> = golden.successes().collect();
    assert_eq!(
        golden.failures().count(),
        0,
        "golden snapshot must contain only successful cells"
    );
    assert_eq!(
        golden_records.len(),
        records.len(),
        "golden snapshot has a different cell count; regenerate it"
    );

    for (&g, r) in golden_records.iter().zip(&records) {
        let ctx = format!("{} {} {}", r.workload, r.input, r.system);
        assert_eq!(g.workload, r.workload);
        assert_eq!(g.input, r.input);
        assert_eq!(g.system, r.system);
        assert_eq!(
            g.config_hash, r.config_hash,
            "{ctx}: machine configuration changed since the snapshot; \
             verify the change is intentional and regenerate the golden file"
        );
        compare_stats(g, r, &ctx);
    }
}

/// Warm-fork variant of the golden test: the same pinned sweep run
/// through a checkpoint-enabled lab — one pass creating the on-disk
/// warm checkpoints, a second fresh lab forking from them — must
/// reproduce the *checked-in cold* golden snapshot. This pins the
/// end-to-end claim that the checkpoint store is purely a wall-clock
/// optimization: forked sweep cells are indistinguishable from cold
/// ones at golden-snapshot tolerances (integers exact).
#[test]
fn warm_forked_sweep_matches_golden_snapshot() {
    if std::env::var_os("BENCH_UPDATE_GOLDEN").is_some() {
        return; // regeneration is owned by the cold test above
    }
    let path = golden_path();
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); run with BENCH_UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    let golden = Manifest::parse(&text).expect("golden snapshot parses");

    let dir = std::env::temp_dir().join(format!("bench-golden-ckpt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cp = CheckpointConfig::new(&dir, 50_000);

    // Pass 1: populate the store.
    let create_lab = Lab::with_checkpoints(FaultPlan::none(), Some(cp.clone()));
    golden_plan().run(&create_lab, 2);
    for r in create_lab.records() {
        assert_eq!(
            r.checkpoint.as_deref(),
            Some("created"),
            "{} {}",
            r.workload,
            r.system
        );
    }

    // Pass 2: a fresh lab must fork every cell from disk.
    let fork_lab = Lab::with_checkpoints(FaultPlan::none(), Some(cp));
    let mut records = golden_plan().run(&fork_lab, 2);
    for r in &mut records {
        r.wall_ms = 0.0;
        assert_eq!(
            r.checkpoint.as_deref(),
            Some("forked"),
            "{} {}",
            r.workload,
            r.system
        );
    }

    let golden_records: Vec<&RunRecord> = golden.successes().collect();
    assert_eq!(golden_records.len(), records.len());
    for (&g, r) in golden_records.iter().zip(&records) {
        let ctx = format!("warm-fork {} {} {}", r.workload, r.input, r.system);
        assert_eq!(g.config_hash, r.config_hash, "{ctx}: config hash");
        compare_stats(g, r, &ctx);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The manifest schema must round-trip `Failed` records through the same
/// write path `BENCH_UPDATE_GOLDEN` uses, so a golden update of a
/// manifest that contains failures (e.g. from a fault-injected sweep)
/// is lossless and the success records stay byte-compatible with the
/// version-1 golden format.
#[test]
fn mixed_manifest_roundtrips_through_golden_write_path() {
    let ok = RunRecord::new(
        "mst",
        InputSet::Test,
        SystemKind::StreamOnly,
        &sim_core::RunStats::default(),
        0.0,
    );
    let failed = FailureRecord::new(
        "health",
        InputSet::Test,
        SystemKind::StreamCdp,
        "deadlock",
        "simulator deadlock: cycle 7 core 0: 0/2 ops retired ...",
        0.0,
    );
    let manifest = Manifest {
        name: "mixed".to_string(),
        records: vec![
            RunOutcome::Success(ok.clone()),
            RunOutcome::Failed(failed.clone()),
        ],
    };
    // Same serialization path as the golden updater.
    let text = manifest.to_json().to_string_pretty();
    let parsed = Manifest::parse(&text).expect("mixed manifest parses");
    assert_eq!(parsed, manifest);
    assert_eq!(parsed.successes().cloned().collect::<Vec<_>>(), vec![ok]);
    assert_eq!(
        parsed.failures().cloned().collect::<Vec<_>>(),
        vec![failed.clone()]
    );
    // A success record's JSON has no `outcome` field (v1 compatibility);
    // a failure's is discriminated and carries the structured error.
    let j = manifest.to_json();
    let records = j.get("records").and_then(sim_core::Json::as_arr).unwrap();
    assert!(records[0].get("outcome").is_none());
    assert_eq!(
        records[1].get("outcome").and_then(sim_core::Json::as_str),
        Some("failed")
    );
    assert_eq!(
        records[1]
            .get("error_kind")
            .and_then(sim_core::Json::as_str),
        Some("deadlock")
    );
    assert!(records[1].get("stats").is_none(), "failures carry no stats");
    // Failed cells never satisfy the resume-skip criterion.
    assert!(!parsed.has_success(
        &failed.workload,
        &failed.input,
        &failed.system,
        failed.config_hash
    ));
}

fn compare_stats(g: &RunRecord, r: &RunRecord, ctx: &str) {
    // Integer counters: the simulator is deterministic, so exact.
    assert_eq!(g.stats.cycles, r.stats.cycles, "{ctx}: cycles");
    assert_eq!(
        g.stats.retired_instructions, r.stats.retired_instructions,
        "{ctx}: retired_instructions"
    );
    assert_eq!(
        g.stats.l2_demand_accesses, r.stats.l2_demand_accesses,
        "{ctx}: l2_demand_accesses"
    );
    assert_eq!(
        g.stats.l2_demand_misses, r.stats.l2_demand_misses,
        "{ctx}: l2_demand_misses"
    );
    assert_eq!(
        g.stats.l2_lds_misses, r.stats.l2_lds_misses,
        "{ctx}: l2_lds_misses"
    );
    assert_eq!(
        g.stats.bus_transfers, r.stats.bus_transfers,
        "{ctx}: bus_transfers"
    );
    assert_eq!(g.stats.writebacks, r.stats.writebacks, "{ctx}: writebacks");

    // Derived floats: tight relative tolerance.
    close(g.stats.ipc, r.stats.ipc, "ipc", ctx);
    close(g.stats.bpki, r.stats.bpki, "bpki", ctx);
    close(g.stats.mpki, r.stats.mpki, "mpki", ctx);

    assert_eq!(
        g.stats.prefetchers.len(),
        r.stats.prefetchers.len(),
        "{ctx}: prefetcher count"
    );
    for (gp, rp) in g.stats.prefetchers.iter().zip(&r.stats.prefetchers) {
        let pctx = format!("{ctx} / {}", rp.name);
        assert_eq!(gp.name, rp.name, "{pctx}: name");
        assert_eq!(gp.issued, rp.issued, "{pctx}: issued");
        assert_eq!(gp.used, rp.used, "{pctx}: used");
        assert_eq!(gp.late, rp.late, "{pctx}: late");
        assert_eq!(gp.pollution, rp.pollution, "{pctx}: pollution");
        assert_eq!(
            gp.unused_evicted, rp.unused_evicted,
            "{pctx}: unused_evicted"
        );
        close(gp.accuracy, rp.accuracy, "accuracy", &pctx);
        close(gp.coverage, rp.coverage, "coverage", &pctx);
    }
}
