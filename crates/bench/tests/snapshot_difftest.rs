//! Differential snapshot suite: warm-state fork must be bit-identical
//! to cold simulation, proven over randomized (workload, config,
//! system) triples by the reusable `bench::difftest` harness, and the
//! lab's on-disk checkpoint store must reproduce cold results exactly
//! while recording its dispositions in the manifest.

#![allow(clippy::unwrap_used)]

use std::path::PathBuf;

use bench::{difftest, CheckpointConfig, FaultPlan, Lab};
use ecdp::system::SystemKind;
use workloads::InputSet;

/// The tentpole property: for a randomized population of triples, the
/// full protocol (capture read-only → fork → wire round-trip fork)
/// yields byte-identical statistics, interval time series and Table 3
/// decision traces. The seed is fixed so a failure reproduces locally.
#[test]
fn randomized_triples_fork_bit_identically() {
    let lab = Lab::with_checkpoints(FaultPlan::none(), None);
    let cases = difftest::random_cases(0xECD9, 6);
    match difftest::run_suite(&lab, &cases) {
        Ok(outcomes) => {
            assert_eq!(outcomes.len(), cases.len());
            for o in &outcomes {
                assert!(
                    o.checkpoint_cycle < o.cold_cycles,
                    "[{}] checkpoint at {} of {} cycles",
                    o.case.label(),
                    o.checkpoint_cycle,
                    o.cold_cycles
                );
                assert!(o.snapshot_bytes > 0);
            }
        }
        Err(failures) => {
            let report: Vec<String> = failures.iter().map(ToString::to_string).collect();
            panic!(
                "{} of {} differential cases failed:\n{}",
                failures.len(),
                cases.len(),
                report.join("\n")
            );
        }
    }
}

fn temp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bench-ckpt-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The lab's checkpoint store: the first run of a cell creates the
/// checkpoint, a fresh lab forks from it, and both produce identical
/// statistics with the disposition recorded per cell.
#[test]
fn checkpoint_store_forks_bit_identically_across_labs() {
    let dir = temp_store("store");
    let cp = CheckpointConfig::new(&dir, 50_000);
    let cells = [
        ("mst", SystemKind::StreamEcdpThrottled),
        ("libquantum", SystemKind::StreamOnly),
    ];

    // Reference: no store at all.
    let cold_lab = Lab::with_checkpoints(FaultPlan::none(), None);
    // First pass creates checkpoints, second pass forks from them.
    let create_lab = Lab::with_checkpoints(FaultPlan::none(), Some(cp.clone()));
    let fork_lab = Lab::with_checkpoints(FaultPlan::none(), Some(cp.clone()));

    for (name, kind) in cells {
        let cold = cold_lab.try_run_on(name, InputSet::Test, kind).unwrap();
        let created = create_lab.try_run_on(name, InputSet::Test, kind).unwrap();
        assert_eq!(cold, created, "{name}: creating pass must match cold");
        let record = create_lab.record_for(name, InputSet::Test, kind).unwrap();
        assert_eq!(record.checkpoint.as_deref(), Some("created"), "{name}");
        assert!(cp.cell_path(name, InputSet::Test, kind).exists(), "{name}");

        let forked = fork_lab.try_run_on(name, InputSet::Test, kind).unwrap();
        assert_eq!(cold, forked, "{name}: forked pass must match cold");
        let record = fork_lab.record_for(name, InputSet::Test, kind).unwrap();
        assert_eq!(record.checkpoint.as_deref(), Some("forked"), "{name}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A truncated checkpoint is rejected by the framing layer (structured
/// error, no panic) and the cell falls back to a cold run that rewrites
/// the file — the per-cell recoverable-failure contract.
#[test]
fn truncated_checkpoint_falls_back_cold_and_heals() {
    let dir = temp_store("trunc");
    let cp = CheckpointConfig::new(&dir, 50_000);
    let (name, kind) = ("health", SystemKind::StreamCdp);

    let cold = Lab::with_checkpoints(FaultPlan::none(), None)
        .try_run_on(name, InputSet::Test, kind)
        .unwrap();
    Lab::with_checkpoints(FaultPlan::none(), Some(cp.clone()))
        .try_run_on(name, InputSet::Test, kind)
        .unwrap();
    let path = cp.cell_path(name, InputSet::Test, kind);
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() / 3]).unwrap();

    let lab = Lab::with_checkpoints(FaultPlan::none(), Some(cp.clone()));
    let stats = lab.try_run_on(name, InputSet::Test, kind).unwrap();
    assert_eq!(cold, stats, "fallback run must match cold");
    let record = lab.record_for(name, InputSet::Test, kind).unwrap();
    let disposition = record.checkpoint.unwrap();
    assert!(
        disposition.starts_with("fallback:"),
        "expected a fallback disposition, got {disposition:?}"
    );
    assert!(
        disposition.contains("truncated"),
        "the reason must name the framing error: {disposition:?}"
    );
    // The fallback rewrote the checkpoint: the next lab forks again.
    let healed = Lab::with_checkpoints(FaultPlan::none(), Some(cp));
    assert_eq!(cold, healed.try_run_on(name, InputSet::Test, kind).unwrap());
    let record = healed.record_for(name, InputSet::Test, kind).unwrap();
    assert_eq!(record.checkpoint.as_deref(), Some("forked"));
    let _ = std::fs::remove_dir_all(&dir);
}

/// A checkpoint whose payload was bit-flipped fails the CRC check and
/// falls back cold with the CRC named in the disposition.
#[test]
fn bit_flipped_checkpoint_is_rejected_by_crc() {
    let dir = temp_store("crc");
    let cp = CheckpointConfig::new(&dir, 50_000);
    let (name, kind) = ("mst", SystemKind::StreamOnly);

    Lab::with_checkpoints(FaultPlan::none(), Some(cp.clone()))
        .try_run_on(name, InputSet::Test, kind)
        .unwrap();
    let path = cp.cell_path(name, InputSet::Test, kind);
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&path, &bytes).unwrap();

    let lab = Lab::with_checkpoints(FaultPlan::none(), Some(cp));
    lab.try_run_on(name, InputSet::Test, kind).unwrap();
    let disposition = lab
        .record_for(name, InputSet::Test, kind)
        .unwrap()
        .checkpoint
        .unwrap();
    assert!(
        disposition.starts_with("fallback:") && disposition.contains("CRC"),
        "expected a CRC fallback, got {disposition:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
