//! Fault-tolerance regression tests: panic isolation in the sweep
//! executor, resume from a partial manifest, and the end-to-end behavior
//! of the real `run_all` binary under injected faults.
//!
//! The injected failures come from [`bench::FaultPlan`]: a panic in one
//! cell and a *genuine* engine livelock (circular address dependences
//! through the real watchdog) in another. The acceptance property is
//! that a sweep with both injected still completes every other cell,
//! records two `Failed` manifest entries, exits nonzero — and that a
//! `--resume` rerun re-simulates only the two failed cells.

#![allow(clippy::unwrap_used)]

use std::path::PathBuf;
use std::process::Command;

use bench::{
    CheckpointConfig, FaultAction, FaultPlan, Lab, Manifest, RunOutcome, SweepOptions, SweepPlan,
};
use ecdp::system::SystemKind;
use workloads::InputSet;

const WORKLOADS: [&str; 3] = ["mst", "health", "libquantum"];
const SYSTEMS: [SystemKind; 3] = [
    SystemKind::StreamOnly,
    SystemKind::StreamCdp,
    SystemKind::StreamEcdpThrottled,
];

fn plan() -> SweepPlan {
    SweepPlan::cross("fault-smoke", &WORKLOADS, InputSet::Test, &SYSTEMS)
}

/// The two injected failures used throughout: a panic in
/// (mst, test, stream+cdp) and a livelock in (health, test, stream).
fn faults() -> FaultPlan {
    let mut f = FaultPlan::none();
    f.push(FaultAction::Panic, "mst", "test", "stream+cdp");
    f.push(FaultAction::Livelock, "health", "test", "stream");
    f
}

#[test]
fn sweep_isolates_injected_panic_and_livelock() {
    let lab = Lab::with_faults(faults());
    let exec = plan().run_fault_tolerant(&lab, 4, &SweepOptions::default());

    assert_eq!(exec.outcomes.len(), 9, "one outcome per cell");
    assert_eq!(exec.ran, 9);
    assert_eq!(exec.skipped, 0);
    assert_eq!(exec.failed(), 2, "exactly the two injected cells fail");

    let failure = |workload: &str, system: &str| {
        exec.outcomes
            .iter()
            .filter_map(RunOutcome::failure)
            .find(|f| f.workload == workload && f.system == system)
            .unwrap_or_else(|| panic!("{workload}/{system} must have failed"))
    };
    let panicked = failure("mst", "stream+cdp");
    assert_eq!(panicked.error_kind, "panic");
    assert!(
        panicked.error.contains("injected fault"),
        "{}",
        panicked.error
    );
    let wedged = failure("health", "stream");
    assert_eq!(wedged.error_kind, "deadlock");
    assert!(
        wedged.error.contains("ops retired"),
        "deadlock message must carry the diagnostic snapshot: {}",
        wedged.error
    );

    // Every remaining cell completed normally, in plan order.
    let successes: Vec<_> = exec
        .outcomes
        .iter()
        .filter_map(RunOutcome::success)
        .collect();
    assert_eq!(successes.len(), 7);
    for s in &successes {
        assert!(s.stats.retired_instructions > 0);
    }

    // The mixed result set round-trips through the manifest format.
    let manifest = Manifest {
        name: "fault-smoke".to_string(),
        records: exec.outcomes.clone(),
    };
    let parsed = Manifest::parse(&manifest.to_json().to_string_pretty()).unwrap();
    assert_eq!(parsed, manifest);
}

#[test]
fn resume_skips_previously_successful_cells() {
    // First pass: two injected failures.
    let first = {
        let lab = Lab::with_faults(faults());
        plan().run_fault_tolerant(&lab, 4, &SweepOptions::default())
    };
    assert_eq!(first.failed(), 2);
    let manifest = Manifest {
        name: "fault-smoke".to_string(),
        records: first.outcomes,
    };

    // Second pass: fresh lab, no faults, resuming from the manifest.
    let lab = Lab::with_faults(FaultPlan::none());
    let exec = plan().run_fault_tolerant(
        &lab,
        4,
        &SweepOptions {
            resume_from: Some(&manifest),
            ..SweepOptions::default()
        },
    );
    assert_eq!(exec.skipped, 7, "all prior successes are skipped");
    assert_eq!(exec.ran, 2, "only the two failed cells re-run");
    assert_eq!(exec.failed(), 0);
    assert_eq!(exec.outcomes.len(), 9, "skipped cells keep their records");
    assert_eq!(
        lab.records().len(),
        2,
        "the lab only simulated the two previously failed cells"
    );
    // The re-run cells are exactly the previously failed ones.
    let rerun: Vec<_> = lab
        .records()
        .iter()
        .map(|r| (r.workload.clone(), r.system.clone()))
        .collect();
    assert!(rerun.contains(&("mst".to_string(), "stream+cdp".to_string())));
    assert!(rerun.contains(&("health".to_string(), "stream".to_string())));
}

/// Drives the real `run_all` binary: a fault-injected sweep must
/// complete the healthy cells, write `Failed` records for the injected
/// ones, exit nonzero, and leave a manifest that a `--resume` rerun
/// (faults cleared) uses to re-simulate only the failed cells.
#[test]
fn run_all_binary_survives_faults_and_resumes() {
    let lab_dir = std::env::temp_dir().join(format!("bench-fault-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&lab_dir);
    std::fs::create_dir_all(&lab_dir).unwrap();

    let run = |fault_plan: Option<&str>, resume: bool| {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_run_all"));
        cmd.arg("--sweep")
            .arg("--jobs")
            .arg("4")
            .env("BENCH_LAB_DIR", &lab_dir)
            .env("BENCH_SWEEP_WORKLOADS", WORKLOADS.join(","))
            .env("BENCH_SWEEP_INPUT", "test")
            .env(
                "BENCH_SWEEP_SYSTEMS",
                SYSTEMS.map(SystemKind::label).join(","),
            )
            .env_remove("BENCH_FAULT_PLAN");
        if let Some(p) = fault_plan {
            cmd.env("BENCH_FAULT_PLAN", p);
        }
        if resume {
            cmd.arg("--resume");
        }
        cmd.output().expect("run_all spawns")
    };
    let manifest_path = lab_dir.join("run_all.json");
    let load = |path: &PathBuf| {
        Manifest::parse(&std::fs::read_to_string(path).unwrap()).expect("manifest parses")
    };

    // Pass 1: injected panic + livelock → nonzero exit, mixed manifest.
    let out = run(
        Some("panic@mst:test:stream+cdp;livelock@health:test:stream"),
        false,
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        !out.status.success(),
        "injected faults must fail the run\n{stderr}"
    );
    assert!(
        stderr.contains("9 ran, 0 skipped (resume), 2 failed"),
        "unexpected sweep summary:\n{stderr}"
    );
    let manifest = load(&manifest_path);
    assert_eq!(manifest.records.len(), 9, "every cell has a record");
    assert_eq!(manifest.failures().count(), 2);
    assert_eq!(manifest.successes().count(), 7);
    let kinds: Vec<_> = manifest.failures().map(|f| f.error_kind.clone()).collect();
    assert!(kinds.contains(&"panic".to_string()), "{kinds:?}");
    assert!(kinds.contains(&"deadlock".to_string()), "{kinds:?}");

    // Pass 2: faults cleared, --resume → only the two failed cells
    // re-run, exit zero, fully successful manifest.
    let out = run(None, true);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "resume pass must succeed\n{stderr}");
    assert!(
        stderr.contains("2 ran, 7 skipped (resume), 0 failed"),
        "resume must re-run only the failed cells:\n{stderr}"
    );
    let manifest = load(&manifest_path);
    assert_eq!(manifest.records.len(), 9);
    assert_eq!(manifest.failures().count(), 0);
    assert_eq!(manifest.successes().count(), 9);

    let _ = std::fs::remove_dir_all(&lab_dir);
}

/// A corrupted on-disk warm checkpoint is a *recoverable* per-cell
/// event, not a sweep failure: the injected `corrupt-checkpoint` fault
/// flips a byte of one cell's checkpoint before it is parsed, the real
/// CRC check rejects it, and the sweep still completes every cell with
/// zero failures — the corrupted cell falls back cold and records a
/// `fallback:` disposition in its manifest record.
#[test]
fn sweep_treats_corrupt_checkpoint_as_recoverable() {
    let dir = std::env::temp_dir().join(format!("bench-ckpt-sweep-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cp = CheckpointConfig::new(&dir, 50_000);

    // Pass 1: clean checkpoint-enabled lab populates the store.
    let seed_lab = Lab::with_checkpoints(FaultPlan::none(), Some(cp.clone()));
    let seeded = plan().run_fault_tolerant(&seed_lab, 4, &SweepOptions::default());
    assert_eq!(seeded.failed(), 0);
    for r in seed_lab.records() {
        assert_eq!(r.checkpoint.as_deref(), Some("created"), "{}", r.workload);
    }

    // Pass 2: fresh lab, same store, one cell's checkpoint corrupted.
    let mut faults = FaultPlan::none();
    faults.push(FaultAction::CorruptCheckpoint, "mst", "test", "stream+cdp");
    let lab = Lab::with_checkpoints(faults, Some(cp));
    let exec = plan().run_fault_tolerant(&lab, 4, &SweepOptions::default());
    assert_eq!(exec.ran, 9, "every cell still runs");
    assert_eq!(exec.failed(), 0, "checkpoint corruption never fails a cell");

    let records = lab.records();
    assert_eq!(records.len(), 9);
    for r in &records {
        let disposition = r.checkpoint.as_deref().unwrap();
        if r.workload == "mst" && r.system == "stream+cdp" {
            assert!(
                disposition.starts_with("fallback:") && disposition.contains("CRC"),
                "corrupted cell must fall back via the CRC check: {disposition:?}"
            );
        } else {
            assert_eq!(disposition, "forked", "{} {}", r.workload, r.system);
        }
    }

    // The fallback run is bit-identical to the clean pass, and the
    // manifest round-trips the dispositions.
    let clean = seed_lab.records();
    for (a, b) in clean.iter().zip(&records) {
        assert_eq!(a.sort_key(), b.sort_key());
        assert!(a.same_metrics(b), "{} {} diverged", a.workload, a.system);
    }
    let manifest = Manifest {
        name: "ckpt-sweep".to_string(),
        records: records.into_iter().map(RunOutcome::Success).collect(),
    };
    let parsed = Manifest::parse(&manifest.to_json().to_string_pretty()).unwrap();
    assert_eq!(parsed, manifest);

    let _ = std::fs::remove_dir_all(&dir);
}

/// Malformed command lines must be rejected with a usage error (exit 2)
/// instead of being silently reinterpreted.
#[test]
fn run_all_binary_rejects_malformed_arguments() {
    for args in [
        vec!["--jobs"],
        vec!["--jobs", "many"],
        vec!["--jobs", "0"],
        vec!["--filter"],
        vec!["--no-such-flag"],
        vec!["a.md", "b.md"],
    ] {
        let out = Command::new(env!("CARGO_BIN_EXE_run_all"))
            .args(&args)
            .output()
            .expect("run_all spawns");
        assert_eq!(
            out.status.code(),
            Some(2),
            "args {args:?} must exit 2 (usage): {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("usage:"),
            "args {args:?} must print usage"
        );
    }
}
