//! Multi-core golden regression: a 4-core MultiMachine running the
//! quad-core smoke mix under the full proposal must reproduce the
//! checked-in snapshot in `tests/golden/multicore_smoke.json` (repo
//! root) within tight tolerances. This pins the shared-bus arbitration
//! and per-core snapshot semantics the single-core golden cannot see.
//!
//! To regenerate after an *intentional* behaviour change:
//!
//! ```sh
//! BENCH_UPDATE_GOLDEN=1 cargo test -p bench --test multicore_golden
//! ```

#![allow(clippy::unwrap_used)]

use std::path::PathBuf;

use bench::Lab;
use ecdp::system::{core_setup, SystemKind};
use sim_core::{Json, MachineConfig, MultiMachine, MultiRunStats};
use workloads::InputSet;

/// The pinned 4-core mix: two pointer-intensive workloads (`mst`,
/// `health`), one streaming (`libquantum`), one compute-bound
/// (`hmmer`) — the same shape as the paper's quad-core case studies,
/// but on the test inputs so the cell stays smoke-sized.
const MIX: [&str; 4] = ["mst", "health", "libquantum", "hmmer"];
const KIND: SystemKind = SystemKind::StreamEcdpThrottled;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/multicore_smoke.json")
}

fn run_smoke_mix(lab: &Lab) -> MultiRunStats {
    let setups = MIX
        .iter()
        .map(|n| core_setup(KIND, &lab.artifacts(n)))
        .collect();
    let traces: Vec<sim_core::Trace> = MIX
        .iter()
        .map(|n| {
            let t = lab.trace(n, InputSet::Test);
            sim_core::Trace {
                initial_memory: t.initial_memory.clone(),
                ops: t.ops.clone(),
                instructions: t.instructions,
            }
        })
        .collect();
    let mut mm = MultiMachine::new(MachineConfig::default(), setups);
    mm.run(&traces).expect("multi-core smoke run failed")
}

fn stats_doc(stats: &MultiRunStats) -> Json {
    Json::obj(vec![
        ("schema_version", Json::Num(1.0)),
        (
            "mix",
            Json::Arr(MIX.iter().map(|n| Json::Str(n.to_string())).collect()),
        ),
        ("input", Json::Str("test".to_string())),
        ("system", Json::Str(KIND.label().to_string())),
        (
            "config_hash",
            Json::Str(format!("{:016x}", bench::manifest::config_hash())),
        ),
        (
            "total_bus_transfers",
            Json::Num(stats.total_bus_transfers as f64),
        ),
        (
            "per_core",
            Json::Arr(
                stats
                    .per_core
                    .iter()
                    .map(|s| s.summary().to_json())
                    .collect(),
            ),
        ),
    ])
}

/// Structural JSON comparison: integers exact, floats at 1e-9 relative
/// tolerance (they round-trip through the text format).
fn assert_json_close(golden: &Json, got: &Json, path: &str) {
    match (golden, got) {
        (Json::Num(a), Json::Num(b)) => {
            let tol = 1e-9 * a.abs().max(b.abs()).max(1.0);
            assert!(
                (a - b).abs() <= tol,
                "{path}: drifted from golden {a} to {b}"
            );
        }
        (Json::Arr(a), Json::Arr(b)) => {
            assert_eq!(a.len(), b.len(), "{path}: array length");
            for (i, (ga, gb)) in a.iter().zip(b).enumerate() {
                assert_json_close(ga, gb, &format!("{path}[{i}]"));
            }
        }
        (Json::Obj(a), Json::Obj(b)) => {
            assert_eq!(
                a.iter().map(|(k, _)| k).collect::<Vec<_>>(),
                b.iter().map(|(k, _)| k).collect::<Vec<_>>(),
                "{path}: object keys"
            );
            for ((k, ga), (_, gb)) in a.iter().zip(b) {
                assert_json_close(ga, gb, &format!("{path}.{k}"));
            }
        }
        _ => assert_eq!(golden, got, "{path}"),
    }
}

#[test]
fn quad_core_smoke_matches_golden_snapshot() {
    let lab = Lab::new();
    let stats = run_smoke_mix(&lab);
    assert_eq!(stats.per_core.len(), MIX.len(), "one snapshot per core");
    assert!(
        stats.total_bus_transfers > 0,
        "4 cores sharing a bus must generate traffic"
    );
    let doc = stats_doc(&stats);

    let path = golden_path();
    if std::env::var_os("BENCH_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, doc.to_string_pretty()).unwrap();
        eprintln!("updated multicore golden at {}", path.display());
        return;
    }
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing multicore golden {} ({e}); run with BENCH_UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    let golden = Json::parse(&text).expect("multicore golden parses");
    assert_json_close(&golden, &doc, "multicore");
}

/// Warm-fork variant of the multicore golden: capture a whole-chip
/// snapshot mid-run (every core plus the shared DRAM system), round it
/// through the wire format, fork a *fresh* `MultiMachine` from it, and
/// require the forked chip to reproduce the checked-in cold golden
/// byte-for-byte — capture must be a pure read and fork must restore
/// shared-bus arbitration state exactly.
#[test]
fn quad_core_warm_fork_matches_golden_snapshot() {
    if std::env::var_os("BENCH_UPDATE_GOLDEN").is_some() {
        return; // regeneration is owned by the cold test above
    }
    let lab = Lab::new();
    let setups = || {
        MIX.iter()
            .map(|n| core_setup(KIND, &lab.artifacts(n)))
            .collect()
    };
    let traces: Vec<sim_core::Trace> = MIX
        .iter()
        .map(|n| {
            let t = lab.trace(n, InputSet::Test);
            sim_core::Trace {
                initial_memory: t.initial_memory.clone(),
                ops: t.ops.clone(),
                instructions: t.instructions,
            }
        })
        .collect();

    let mut cold = MultiMachine::new(MachineConfig::default(), setups());
    cold.set_warm_checkpoint(Some(50_000));
    let cold_stats = cold.run(&traces).expect("cold run");
    let snapshot = cold.take_snapshot().expect("run passed the capture point");

    // Round-trip the snapshot through the wire format before forking,
    // so the on-disk path is what this golden actually certifies.
    let restored = sim_core::Snapshot::from_bytes(&snapshot.to_bytes()).expect("wire round-trip");
    let mut forked = MultiMachine::new(MachineConfig::default(), setups());
    forked.fork_from(&restored).expect("fork accepted");
    let fork_stats = forked.run(&traces).expect("forked run");

    // Forked chip == cold chip, bit for bit (identical serialized docs).
    assert_eq!(
        stats_doc(&cold_stats).to_string_pretty(),
        stats_doc(&fork_stats).to_string_pretty(),
        "warm-forked chip diverged from the capture-armed cold run"
    );

    // And both match the checked-in golden (capture was a pure read).
    let path = golden_path();
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing multicore golden {} ({e}); run with BENCH_UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    let golden = Json::parse(&text).expect("multicore golden parses");
    assert_json_close(&golden, &stats_doc(&fork_stats), "multicore-warm-fork");
}

/// Two back-to-back runs of the same mix must agree exactly — the
/// shared-bus arbiter has no hidden cross-run state.
#[test]
fn quad_core_smoke_is_deterministic() {
    let lab = Lab::new();
    let a = run_smoke_mix(&lab);
    let b = run_smoke_mix(&lab);
    assert_eq!(a.total_bus_transfers, b.total_bus_transfers);
    for (i, (x, y)) in a.per_core.iter().zip(&b.per_core).enumerate() {
        assert_eq!(x.cycles, y.cycles, "core {i} cycles");
        assert_eq!(
            x.retired_instructions, y.retired_instructions,
            "core {i} instructions"
        );
        assert_eq!(x.bus_transfers, y.bus_transfers, "core {i} bus");
    }
}
