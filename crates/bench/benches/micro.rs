//! Criterion micro-benchmarks of the simulator's hot paths: cache lookups,
//! DRAM scheduling, CDP block scans, stream-table training, hint-vector
//! filtering, trace generation and a small end-to-end machine run.

#![allow(clippy::unwrap_used)]

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use ecdp::hints::{HintTable, HintVector};
use ecdp::profile::profile_workload;
use ecdp::system::{CompilerArtifacts, SystemBuilder, SystemKind};
use prefetch::{AllowAll, CdpConfig, ContentDirectedPrefetcher, StreamConfig, StreamPrefetcher};
use sim_core::cache::{Cache, CacheConfig, LineState};
use sim_core::dram::{Dram, DramRequest};
use sim_core::{DemandAccess, DramConfig, FillEvent, PrefetchCtx, Prefetcher, PrefetcherId};
use sim_mem::SimMemory;
use workloads::{registry, InputSet, Workload};

fn bench_cache(c: &mut Criterion) {
    let mut cache = Cache::new(CacheConfig {
        bytes: 1024 * 1024,
        ways: 8,
        hit_latency: 15,
    });
    for i in 0..16384u32 {
        cache.fill(i * 64, LineState::default());
    }
    let mut i = 0u32;
    c.bench_function("l2_access_hit", |b| {
        b.iter(|| {
            i = (i + 997) % 16384;
            black_box(cache.access(i * 64).is_some())
        })
    });
    let mut j = 0u32;
    c.bench_function("l2_fill_evict", |b| {
        b.iter(|| {
            j += 1;
            black_box(cache.fill((16384 + j) * 64, LineState::default()))
        })
    });
}

fn bench_dram(c: &mut Criterion) {
    c.bench_function("dram_enqueue_tick", |b| {
        b.iter_batched(
            || Dram::new(DramConfig::default(), 1),
            |mut dram| {
                for k in 0..16u32 {
                    dram.try_enqueue(DramRequest {
                        block_addr: k * 64 * 9,
                        is_write: false,
                        is_demand: true,
                        core: 0,
                        mshr_slot: k,
                        enqueue_cycle: 0,
                    });
                }
                black_box(dram.tick(10_000).len())
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_cdp_scan(c: &mut Criterion) {
    let mut mem = SimMemory::new();
    let block = 0x4000_0040;
    for i in 0..16u32 {
        // Half the words look like pointers.
        let v = if i % 2 == 0 { 0x4000_1000 + i * 64 } else { i };
        mem.write_u32(block + i * 4, v);
    }
    let mut cdp =
        ContentDirectedPrefetcher::new(PrefetcherId(1), CdpConfig::default(), Box::new(AllowAll));
    let ev = FillEvent {
        block_addr: block,
        kind: sim_core::AccessKind::DemandLoad,
        trigger_pc: 0x100,
        trigger_addr: block,
        depth: 0,
        pg: None,
        cycle: 0,
    };
    c.bench_function("cdp_block_scan", |b| {
        b.iter(|| {
            let mut ctx = PrefetchCtx::new(&mem, 0);
            cdp.on_fill(&mut ctx, &ev);
            black_box(ctx.take_requests().len())
        })
    });
}

fn bench_stream(c: &mut Criterion) {
    let mem = SimMemory::new();
    let mut stream = StreamPrefetcher::new(PrefetcherId(0), StreamConfig::default());
    let mut addr = 0x4000_0000u32;
    c.bench_function("stream_train_advance", |b| {
        b.iter(|| {
            addr = addr.wrapping_add(64);
            let mut ctx = PrefetchCtx::new(&mem, 0);
            stream.on_demand_access(
                &mut ctx,
                &DemandAccess {
                    pc: 0x10,
                    addr,
                    value: 0,
                    hit: false,
                    is_store: false,
                    cycle: 0,
                },
            );
            black_box(ctx.take_requests().len())
        })
    });
}

fn bench_hints(c: &mut Criterion) {
    let mut table = HintTable::new();
    for pc in 0..64u32 {
        let mut v = HintVector::default();
        v.set(8);
        v.set(-4);
        table.insert(pc * 4, v);
    }
    let mut off = 0i32;
    c.bench_function("hint_table_allow", |b| {
        b.iter(|| {
            use prefetch::ScanFilter;
            off = (off + 4) % 64;
            black_box(table.allow(32, off))
        })
    });
}

fn bench_trace_generation(c: &mut Criterion) {
    c.bench_function("trace_generate_mst_train", |b| {
        b.iter(|| {
            let t = registry::lookup("mst").unwrap().generate(InputSet::Train);
            black_box(t.ops.len())
        })
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    // A small end-to-end run: profile once, then measure the simulation.
    let wl = workloads::olden::Mst;
    let train = wl.generate(InputSet::Train);
    let artifacts = CompilerArtifacts::from_profile(&profile_workload(&train));
    let mut group = c.benchmark_group("machine_run_mst_train");
    group.sample_size(10);
    group.bench_function("stream_ecdp_throttled", |b| {
        b.iter(|| {
            black_box(
                SystemBuilder::new(SystemKind::StreamEcdpThrottled)
                    .artifacts(&artifacts)
                    .run(&train)
                    .expect("run")
                    .stats
                    .cycles,
            )
        })
    });
    group.bench_function("stream_only", |b| {
        b.iter(|| {
            black_box(
                SystemBuilder::new(SystemKind::StreamOnly)
                    .artifacts(&artifacts)
                    .run(&train)
                    .expect("run")
                    .stats
                    .cycles,
            )
        })
    });
    group.finish();
}

fn bench_cow_memory(c: &mut Criterion) {
    // Cost of the copy-on-write snapshot restore that `CoreSim::rewind`
    // relies on, versus the eager deep copy it replaced.
    let mut mem = SimMemory::new();
    for i in 0..4096u32 {
        mem.write_u32(0x4000_0000 + i * 64, i);
    }
    c.bench_function("simmemory_cow_clone", |b| {
        b.iter(|| black_box(mem.clone().resident_pages()))
    });
    let mut scratch = mem.clone();
    c.bench_function("simmemory_clone_from_snapshot", |b| {
        b.iter(|| {
            scratch.write_u32(0x4000_0000, 7); // un-share one page
            scratch.clone_from(&mem);
            black_box(scratch.resident_pages())
        })
    });
}

fn bench_dram_idle_tick(c: &mut Criterion) {
    // The cached-next-event fast path: ticking an empty (or all-in-flight)
    // DRAM must be nearly free, because the skip-ahead loop still calls it
    // at every visited event.
    let mut dram = Dram::new(DramConfig::default(), 1);
    let mut now = 0u64;
    c.bench_function("dram_idle_tick", |b| {
        b.iter(|| {
            now += 1;
            black_box(dram.tick(now).len())
        })
    });
}

fn bench_skip_vs_reference(c: &mut Criterion) {
    // The tentpole: the event-skipping engine against the cycle-by-cycle
    // reference stepper on the same trace. The ratio is the skip-ahead win.
    let trace = registry::lookup("libquantum")
        .unwrap()
        .generate(InputSet::Test);
    let artifacts = CompilerArtifacts::empty();
    let mut group = c.benchmark_group("engine_stepping_libquantum_test");
    group.sample_size(10);
    group.bench_function("skip_ahead", |b| {
        b.iter(|| {
            black_box(
                SystemBuilder::new(SystemKind::StreamOnly)
                    .artifacts(&artifacts)
                    .run(&trace)
                    .expect("run")
                    .stats
                    .cycles,
            )
        })
    });
    group.bench_function("reference_stepper", |b| {
        b.iter(|| {
            black_box(
                SystemBuilder::new(SystemKind::StreamOnly)
                    .artifacts(&artifacts)
                    .reference_stepping(true)
                    .run(&trace)
                    .expect("run")
                    .stats
                    .cycles,
            )
        })
    });
    group.finish();
}

fn bench_interval_rollover(c: &mut Criterion) {
    use sim_core::throttling::FeedbackCounters;
    let mut counters = FeedbackCounters::default();
    c.bench_function("feedback_interval_rollover", |b| {
        b.iter(|| {
            for _ in 0..64 {
                counters.record_issued();
                counters.record_used(false);
            }
            counters.end_interval();
            black_box(counters.prefetched)
        })
    });
}

criterion_group!(
    benches,
    bench_cache,
    bench_dram,
    bench_cdp_scan,
    bench_stream,
    bench_hints,
    bench_trace_generation,
    bench_end_to_end,
    bench_cow_memory,
    bench_dram_idle_tick,
    bench_skip_vs_reference,
    bench_interval_rollover
);
criterion_main!(benches);
