//! Zhuang & Lee's hardware prefetch pollution filter (ICPP 2003) — the
//! purely hardware alternative to ECDP's compiler-guided filtering that the
//! paper compares against in §6.4.
//!
//! The filter remembers, per block (hashed into a table of 2-bit counters),
//! whether the last prefetch of that block was useless. A prefetch request
//! whose target's counter is saturated is suppressed. Counters move toward
//! "useless" when a prefetched block is evicted untouched and toward
//! "useful" when a prefetched block is used. As the paper observes, this
//! history-based scheme is aggressive: it also kills prefetches that would
//! have been useful this time around.

use sim_core::{
    Addr, Aggressiveness, DemandAccess, FillEvent, PgTag, PrefetchCtx, Prefetcher, PrefetcherKind,
    SnapReader, SnapWriter, SnapshotError,
};
use sim_mem::block_of;

/// Pollution-filter parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FilterConfig {
    /// Number of 2-bit counters. 32768 counters = 8 KB table, the size the
    /// paper found to perform best for CDP.
    pub counters: usize,
    /// Counter value at or above which prefetches are suppressed (0..=3).
    pub threshold: u8,
}

impl Default for FilterConfig {
    fn default() -> Self {
        FilterConfig {
            counters: 32768,
            threshold: 2,
        }
    }
}

impl FilterConfig {
    /// Table storage in bytes (2 bits per counter).
    pub fn storage_bytes(&self) -> usize {
        self.counters / 4
    }
}

/// A prefetcher wrapper that drops requests the pollution filter predicts
/// to be useless.
///
/// # Example
///
/// ```
/// use prefetch::{AllowAll, CdpConfig, ContentDirectedPrefetcher};
/// use prefetch::{FilterConfig, PollutionFilteredPrefetcher};
/// use sim_core::{Prefetcher, PrefetcherId};
///
/// let cdp = ContentDirectedPrefetcher::new(
///     PrefetcherId(1),
///     CdpConfig::default(),
///     Box::new(AllowAll),
/// );
/// let filtered = PollutionFilteredPrefetcher::new(Box::new(cdp), FilterConfig::default());
/// assert_eq!(filtered.name(), "cdp+hwfilter");
/// ```
pub struct PollutionFilteredPrefetcher {
    inner: Box<dyn Prefetcher>,
    config: FilterConfig,
    table: Vec<u8>,
}

impl PollutionFilteredPrefetcher {
    /// Wraps `inner` with a pollution filter.
    pub fn new(inner: Box<dyn Prefetcher>, config: FilterConfig) -> Self {
        PollutionFilteredPrefetcher {
            inner,
            config,
            table: vec![0; config.counters],
        }
    }

    fn slot(&self, block: Addr) -> usize {
        // Multiplicative hash over the block index.
        let idx = (block / sim_mem::BLOCK_BYTES).wrapping_mul(2654435761);
        (idx as usize) % self.config.counters
    }

    fn suppressed(&self, addr: Addr) -> bool {
        self.table[self.slot(block_of(addr))] >= self.config.threshold
    }

    fn filter_staged(&self, ctx: &mut PrefetchCtx<'_>) {
        let staged = ctx.take_requests();
        for req in staged {
            if !self.suppressed(req.addr) {
                ctx.request(req);
            }
        }
    }

    /// Number of table counters currently saturated at or above threshold.
    pub fn suppressed_blocks(&self) -> usize {
        self.table
            .iter()
            .filter(|&&c| c >= self.config.threshold)
            .count()
    }
}

impl std::fmt::Debug for PollutionFilteredPrefetcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PollutionFilteredPrefetcher")
            .field("inner", &self.inner.name())
            .field("suppressed_blocks", &self.suppressed_blocks())
            .finish()
    }
}

impl Prefetcher for PollutionFilteredPrefetcher {
    fn name(&self) -> &'static str {
        // Report a composite name; the inner prefetcher is always CDP in the
        // paper's comparison.
        "cdp+hwfilter"
    }

    fn kind(&self) -> PrefetcherKind {
        self.inner.kind()
    }

    fn on_demand_access(&mut self, ctx: &mut PrefetchCtx<'_>, ev: &DemandAccess) {
        self.inner.on_demand_access(ctx, ev);
        self.filter_staged(ctx);
    }

    fn on_fill(&mut self, ctx: &mut PrefetchCtx<'_>, ev: &FillEvent) {
        self.inner.on_fill(ctx, ev);
        self.filter_staged(ctx);
    }

    fn on_prefetch_outcome(&mut self, block_addr: Addr, pg: Option<PgTag>, used: bool) {
        let slot = self.slot(block_addr);
        if used {
            self.table[slot] = self.table[slot].saturating_sub(1);
        } else {
            self.table[slot] = (self.table[slot] + 1).min(3);
        }
        self.inner.on_prefetch_outcome(block_addr, pg, used);
    }

    fn set_aggressiveness(&mut self, level: Aggressiveness) {
        self.inner.set_aggressiveness(level);
    }

    fn aggressiveness(&self) -> Aggressiveness {
        self.inner.aggressiveness()
    }

    fn save_state(&self, w: &mut SnapWriter) {
        // Counters are mostly zero: store (slot, value) pairs, then
        // delegate to the wrapped prefetcher in the same stream.
        let filled = self.table.iter().filter(|&&c| c != 0).count();
        w.u64(filled as u64);
        for (slot, &c) in self.table.iter().enumerate() {
            if c != 0 {
                w.u32(slot as u32);
                w.u8(c);
            }
        }
        self.inner.save_state(w);
    }

    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        self.table.fill(0);
        let n = r.len_prefix()?;
        for _ in 0..n {
            let slot = r.u32()? as usize;
            if slot >= self.table.len() {
                return Err(SnapshotError::Malformed(format!(
                    "filter counter slot {slot} out of range"
                )));
            }
            self.table[slot] = r.u8()?;
        }
        self.inner.load_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cdp::{AllowAll, CdpConfig, ContentDirectedPrefetcher};
    use sim_core::{AccessKind, PrefetcherId};
    use sim_mem::SimMemory;

    fn filtered() -> PollutionFilteredPrefetcher {
        let cdp = ContentDirectedPrefetcher::new(
            PrefetcherId(1),
            CdpConfig::default(),
            Box::new(AllowAll),
        );
        PollutionFilteredPrefetcher::new(Box::new(cdp), FilterConfig::default())
    }

    fn fill(pf: &mut PollutionFilteredPrefetcher, mem: &SimMemory, block: Addr) -> Vec<Addr> {
        let mut ctx = PrefetchCtx::new(mem, 0);
        pf.on_fill(
            &mut ctx,
            &FillEvent {
                block_addr: block,
                kind: AccessKind::DemandLoad,
                trigger_pc: 0x100,
                trigger_addr: block,
                depth: 0,
                pg: None,
                cycle: 0,
            },
        );
        ctx.take_requests().iter().map(|r| r.addr).collect()
    }

    #[test]
    fn passes_through_until_trained() {
        let mut mem = SimMemory::new();
        let block = 0x4000_0040;
        mem.write_u32(block, 0x4000_2000);
        let mut pf = filtered();
        assert_eq!(fill(&mut pf, &mem, block), vec![0x4000_2000]);
    }

    #[test]
    fn repeated_useless_outcomes_suppress() {
        let mut mem = SimMemory::new();
        let block = 0x4000_0040;
        let target = 0x4000_2000;
        mem.write_u32(block, target);
        let mut pf = filtered();
        // Two useless outcomes saturate to threshold 2.
        pf.on_prefetch_outcome(sim_mem::block_of(target), None, false);
        pf.on_prefetch_outcome(sim_mem::block_of(target), None, false);
        assert!(fill(&mut pf, &mem, block).is_empty(), "suppressed");
    }

    #[test]
    fn useful_outcomes_rehabilitate() {
        let mut mem = SimMemory::new();
        let block = 0x4000_0040;
        let target = 0x4000_2000;
        mem.write_u32(block, target);
        let mut pf = filtered();
        pf.on_prefetch_outcome(sim_mem::block_of(target), None, false);
        pf.on_prefetch_outcome(sim_mem::block_of(target), None, false);
        assert!(fill(&mut pf, &mem, block).is_empty());
        pf.on_prefetch_outcome(sim_mem::block_of(target), None, true);
        assert_eq!(fill(&mut pf, &mem, block), vec![target]);
    }

    #[test]
    fn table_is_8kb_by_default() {
        assert_eq!(FilterConfig::default().storage_bytes(), 8192);
    }

    #[test]
    fn aggressiveness_delegates_to_inner() {
        let mut pf = filtered();
        pf.set_aggressiveness(Aggressiveness::Conservative);
        assert_eq!(pf.aggressiveness(), Aggressiveness::Conservative);
    }
}
