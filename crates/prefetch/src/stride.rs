//! Classic PC-based stride prefetching (Chen & Baer style) — the per-load
//! complement to the region-based stream prefetcher. Each static load gets a
//! reference-prediction-table entry tracking its last address and stride;
//! two confirmations arm the entry and prefetches are issued `degree` strides
//! ahead.

use std::collections::HashMap;

use sim_core::{
    Aggressiveness, DemandAccess, PrefetchCtx, PrefetchRequest, Prefetcher, PrefetcherId,
    PrefetcherKind, SnapReader, SnapWriter, SnapshotError,
};
use sim_mem::Addr;

/// Stride prefetcher parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StrideConfig {
    /// Reference prediction table entries (per static load).
    pub table_entries: usize,
    /// Confirmations required before prefetching.
    pub confirmations: u8,
}

impl Default for StrideConfig {
    fn default() -> Self {
        StrideConfig {
            table_entries: 256,
            confirmations: 2,
        }
    }
}

/// Prefetch-ahead degree per aggressiveness level.
const DEGREE_LEVELS: [i64; 4] = [1, 2, 4, 8];

#[derive(Debug, Clone, Copy)]
struct RptEntry {
    last_addr: Addr,
    stride: i64,
    confidence: u8,
    lru: u64,
}

/// A per-PC stride prefetcher with a reference prediction table.
///
/// # Example
///
/// ```
/// use prefetch::{StrideConfig, StridePrefetcher};
/// use sim_core::{Prefetcher, PrefetcherId};
///
/// let pf = StridePrefetcher::new(PrefetcherId(0), StrideConfig::default());
/// assert_eq!(pf.name(), "stride");
/// ```
#[derive(Debug)]
pub struct StridePrefetcher {
    id: PrefetcherId,
    config: StrideConfig,
    level: Aggressiveness,
    table: HashMap<u32, RptEntry>,
    tick: u64,
}

impl StridePrefetcher {
    /// Creates a stride prefetcher registered as `id`.
    pub fn new(id: PrefetcherId, config: StrideConfig) -> Self {
        StridePrefetcher {
            id,
            config,
            level: Aggressiveness::Aggressive,
            table: HashMap::new(),
            tick: 0,
        }
    }

    fn evict_if_full(&mut self) {
        if self.table.len() < self.config.table_entries {
            return;
        }
        if let Some((&pc, _)) = self.table.iter().min_by_key(|(_, e)| e.lru) {
            self.table.remove(&pc);
        }
    }
}

impl Prefetcher for StridePrefetcher {
    fn name(&self) -> &'static str {
        "stride"
    }

    fn kind(&self) -> PrefetcherKind {
        PrefetcherKind::Stream
    }

    fn on_demand_access(&mut self, ctx: &mut PrefetchCtx<'_>, ev: &DemandAccess) {
        self.tick += 1;
        let tick = self.tick;
        let confirmations = self.config.confirmations;
        let degree = DEGREE_LEVELS[self.level.index()];

        let entry = match self.table.get_mut(&ev.pc) {
            Some(e) => e,
            None => {
                self.evict_if_full();
                self.table.insert(
                    ev.pc,
                    RptEntry {
                        last_addr: ev.addr,
                        stride: 0,
                        confidence: 0,
                        lru: tick,
                    },
                );
                return;
            }
        };
        entry.lru = tick;
        let stride = i64::from(ev.addr) - i64::from(entry.last_addr);
        if stride == 0 {
            return;
        }
        if stride == entry.stride {
            entry.confidence = entry.confidence.saturating_add(1);
        } else {
            entry.stride = stride;
            entry.confidence = 0;
        }
        entry.last_addr = ev.addr;
        if entry.confidence >= confirmations {
            let stride = entry.stride;
            for k in 1..=degree {
                let target = i64::from(ev.addr) + stride * k;
                if target <= 0 || target > i64::from(Addr::MAX) {
                    break;
                }
                ctx.request(PrefetchRequest {
                    addr: target as Addr,
                    id: self.id,
                    depth: 0,
                    pg: None,
                    root_pc: ev.pc,
                });
            }
        }
    }

    fn set_aggressiveness(&mut self, level: Aggressiveness) {
        self.level = level;
    }

    fn aggressiveness(&self) -> Aggressiveness {
        self.level
    }

    fn save_state(&self, w: &mut SnapWriter) {
        w.u64(self.tick);
        // Sort by PC for a deterministic blob (LRU stamps are unique, so
        // eviction order does not depend on map iteration order).
        let mut entries: Vec<(&u32, &RptEntry)> = self.table.iter().collect();
        entries.sort_by_key(|(&pc, _)| pc);
        w.u32(entries.len() as u32);
        for (&pc, e) in entries {
            w.u32(pc);
            w.u32(e.last_addr);
            w.i64(e.stride);
            w.u8(e.confidence);
            w.u64(e.lru);
        }
    }

    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        self.tick = r.u64()?;
        let n = r.u32()? as usize;
        if n > self.config.table_entries {
            return Err(SnapshotError::Malformed(format!(
                "snapshot has {n} RPT entries, table holds {}",
                self.config.table_entries
            )));
        }
        self.table.clear();
        for _ in 0..n {
            let pc = r.u32()?;
            self.table.insert(
                pc,
                RptEntry {
                    last_addr: r.u32()?,
                    stride: r.i64()?,
                    confidence: r.u8()?,
                    lru: r.u64()?,
                },
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_mem::SimMemory;

    fn access(pf: &mut StridePrefetcher, pc: u32, addr: Addr) -> Vec<Addr> {
        let mem = SimMemory::new();
        let mut ctx = PrefetchCtx::new(&mem, 0);
        pf.on_demand_access(
            &mut ctx,
            &DemandAccess {
                pc,
                addr,
                value: 0,
                hit: false,
                is_store: false,
                cycle: 0,
            },
        );
        ctx.take_requests().iter().map(|r| r.addr).collect()
    }

    #[test]
    fn constant_stride_is_learned_per_pc() {
        let mut pf = StridePrefetcher::new(PrefetcherId(0), StrideConfig::default());
        let base = 0x4000_0000;
        assert!(access(&mut pf, 0x10, base).is_empty());
        assert!(access(&mut pf, 0x10, base + 256).is_empty()); // stride set
        assert!(access(&mut pf, 0x10, base + 512).is_empty()); // conf 1
        let reqs = access(&mut pf, 0x10, base + 768); // conf 2: fire
        assert!(!reqs.is_empty());
        assert_eq!(reqs[0], base + 1024);
    }

    #[test]
    fn interleaved_pcs_do_not_interfere() {
        let mut pf = StridePrefetcher::new(PrefetcherId(0), StrideConfig::default());
        let a = 0x4000_0000;
        let b = 0x4800_0000;
        for i in 0..4u32 {
            let ra = access(&mut pf, 0x10, a + i * 64);
            let rb = access(&mut pf, 0x20, b + i * 4096);
            if i == 3 {
                assert_eq!(ra[0], a + 4 * 64);
                assert_eq!(rb[0], b + 4 * 4096);
            }
        }
    }

    #[test]
    fn changing_stride_resets_confidence() {
        let mut pf = StridePrefetcher::new(PrefetcherId(0), StrideConfig::default());
        let base = 0x4000_0000;
        access(&mut pf, 0x10, base);
        access(&mut pf, 0x10, base + 64);
        access(&mut pf, 0x10, base + 128);
        // Break the pattern.
        assert!(access(&mut pf, 0x10, base + 1000).is_empty());
        assert!(access(&mut pf, 0x10, base + 1100).is_empty());
    }

    #[test]
    fn table_is_bounded() {
        let mut pf = StridePrefetcher::new(
            PrefetcherId(0),
            StrideConfig {
                table_entries: 8,
                confirmations: 2,
            },
        );
        for pc in 0..100u32 {
            access(&mut pf, pc, 0x4000_0000 + pc * 4);
        }
        assert!(pf.table.len() <= 8);
    }

    #[test]
    fn degree_follows_aggressiveness() {
        let mut pf = StridePrefetcher::new(PrefetcherId(0), StrideConfig::default());
        pf.set_aggressiveness(Aggressiveness::VeryConservative);
        let base = 0x4000_0000;
        for i in 0..3u32 {
            access(&mut pf, 0x10, base + i * 64);
        }
        assert_eq!(access(&mut pf, 0x10, base + 3 * 64).len(), 1);
    }
}
