//! Hardware prefetcher implementations for the ECDP reproduction.
//!
//! This crate provides every prefetcher evaluated in the paper:
//!
//! * [`StreamPrefetcher`] — the baseline IBM POWER4/POWER5-style stream
//!   prefetcher (32 streams, distance/degree controlled by the
//!   aggressiveness level of Table 2).
//! * [`ContentDirectedPrefetcher`] — Cooksey et al.'s stateless CDP with the
//!   compare-bits virtual-address predictor and recursive block scanning.
//!   Its scan can be filtered through a [`ScanFilter`] — the hook the `ecdp`
//!   crate uses to install compiler-generated hint bit vectors.
//! * [`MarkovPrefetcher`] — address-correlation prefetching (Joseph &
//!   Grunwald) with a 1 MB correlation table.
//! * [`GhbPrefetcher`] — global-history-buffer G/DC delta correlation
//!   (Nesbit & Smith).
//! * [`DependenceBasedPrefetcher`] — Roth et al.'s producer/consumer LDS
//!   prefetcher (potential-producer window + correlation table).
//! * [`PollutionFilteredPrefetcher`] — Zhuang & Lee's hardware filter
//!   wrapped around any inner prefetcher (the §6.4 comparison).
//!
//! Beyond the paper's evaluation set, the crate also provides the related
//! prefetchers its discussion ranges over: [`NextLinePrefetcher`] (the 1977
//! baseline), [`StridePrefetcher`] (per-PC reference prediction),
//! [`JumpPointerPrefetcher`] (the 64 KB pointer-storage approach of §7.3)
//! and [`AvdPrefetcher`] (address-value-delta prediction, §7.3).

pub mod avd;
pub mod cdp;
pub mod dbp;
pub mod filter;
pub mod ghb;
pub mod jump_pointer;
pub mod markov;
pub mod nextline;
pub mod stream;
pub mod stride;

pub use avd::{AvdConfig, AvdPrefetcher};
pub use cdp::{AllowAll, CdpConfig, ContentDirectedPrefetcher, ScanFilter};
pub use dbp::{DbpConfig, DependenceBasedPrefetcher};
pub use filter::{FilterConfig, PollutionFilteredPrefetcher};
pub use ghb::{GhbConfig, GhbPrefetcher};
pub use jump_pointer::{JumpPointerConfig, JumpPointerPrefetcher};
pub use markov::{MarkovConfig, MarkovPrefetcher};
pub use nextline::NextLinePrefetcher;
pub use stream::{StreamConfig, StreamPrefetcher};
pub use stride::{StrideConfig, StridePrefetcher};
