//! Next-N-line prefetching — the simplest hardware prefetcher (Gindele
//! 1977, the paper's reference \[12\]): on a demand miss, prefetch the next
//! sequential block(s). Included as the historical baseline the stream
//! prefetcher descends from.

use sim_core::{
    Aggressiveness, DemandAccess, PrefetchCtx, PrefetchRequest, Prefetcher, PrefetcherId,
    PrefetcherKind,
};
use sim_mem::{block_of, Addr, BLOCK_BYTES};

/// Blocks prefetched per miss for the four aggressiveness levels.
const DEGREE_LEVELS: [u32; 4] = [1, 1, 2, 4];

/// A next-N-line prefetcher.
///
/// # Example
///
/// ```
/// use prefetch::NextLinePrefetcher;
/// use sim_core::{Prefetcher, PrefetcherId};
///
/// let pf = NextLinePrefetcher::new(PrefetcherId(0));
/// assert_eq!(pf.name(), "next-line");
/// ```
#[derive(Debug)]
pub struct NextLinePrefetcher {
    id: PrefetcherId,
    level: Aggressiveness,
}

impl NextLinePrefetcher {
    /// Creates a next-line prefetcher registered as `id`.
    pub fn new(id: PrefetcherId) -> Self {
        NextLinePrefetcher {
            id,
            level: Aggressiveness::Aggressive,
        }
    }
}

impl Prefetcher for NextLinePrefetcher {
    fn name(&self) -> &'static str {
        "next-line"
    }

    fn kind(&self) -> PrefetcherKind {
        PrefetcherKind::Stream
    }

    fn on_demand_access(&mut self, ctx: &mut PrefetchCtx<'_>, ev: &DemandAccess) {
        if ev.hit {
            return;
        }
        let base = block_of(ev.addr);
        for k in 1..=DEGREE_LEVELS[self.level.index()] {
            let target = u64::from(base) + u64::from(k * BLOCK_BYTES);
            if target > u64::from(Addr::MAX) {
                break;
            }
            ctx.request(PrefetchRequest {
                addr: target as Addr,
                id: self.id,
                depth: 0,
                pg: None,
                root_pc: ev.pc,
            });
        }
    }

    fn set_aggressiveness(&mut self, level: Aggressiveness) {
        self.level = level;
    }

    fn aggressiveness(&self) -> Aggressiveness {
        self.level
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_mem::SimMemory;

    fn miss(pf: &mut NextLinePrefetcher, addr: Addr) -> Vec<Addr> {
        let mem = SimMemory::new();
        let mut ctx = PrefetchCtx::new(&mem, 0);
        pf.on_demand_access(
            &mut ctx,
            &DemandAccess {
                pc: 1,
                addr,
                value: 0,
                hit: false,
                is_store: false,
                cycle: 0,
            },
        );
        ctx.take_requests().iter().map(|r| r.addr).collect()
    }

    #[test]
    fn prefetches_sequential_blocks() {
        let mut pf = NextLinePrefetcher::new(PrefetcherId(0));
        let got = miss(&mut pf, 0x4000_0010);
        assert_eq!(
            got,
            vec![0x4000_0040, 0x4000_0080, 0x4000_00C0, 0x4000_0100]
        );
    }

    #[test]
    fn degree_follows_aggressiveness() {
        let mut pf = NextLinePrefetcher::new(PrefetcherId(0));
        pf.set_aggressiveness(Aggressiveness::VeryConservative);
        assert_eq!(miss(&mut pf, 0x4000_0000).len(), 1);
    }

    #[test]
    fn hits_do_not_trigger() {
        let mut pf = NextLinePrefetcher::new(PrefetcherId(0));
        let mem = SimMemory::new();
        let mut ctx = PrefetchCtx::new(&mem, 0);
        pf.on_demand_access(
            &mut ctx,
            &DemandAccess {
                pc: 1,
                addr: 0x100,
                value: 0,
                hit: true,
                is_store: false,
                cycle: 0,
            },
        );
        assert!(ctx.take_requests().is_empty());
    }
}
