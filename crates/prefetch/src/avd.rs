//! Address-Value Delta (AVD) prediction used as a prefetcher (after Mutlu
//! et al., MICRO 2005 — the paper's §7.3 notes AVD is "less effective when
//! employed for prefetching instead of value prediction").
//!
//! For each *pointer load* (a load whose loaded value is itself an address),
//! the predictor tracks the delta `address − value`. Many allocators place
//! linked nodes at stable relative distances, so a stable delta predicts the
//! value of the next instance of the load: `predicted_value = next_address −
//! delta`. Used as a prefetcher, a confident entry prefetches
//! `current_address − delta` — the block the pointer it is *about to load*
//! most likely names.

use std::collections::HashMap;

use sim_core::{
    Aggressiveness, DemandAccess, PrefetchCtx, PrefetchRequest, Prefetcher, PrefetcherId,
    PrefetcherKind, SnapReader, SnapWriter, SnapshotError,
};
use sim_mem::{layout, Addr};

/// AVD predictor parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AvdConfig {
    /// Predictor entries (one per static pointer load, LRU).
    pub entries: usize,
    /// Maximum |delta| tracked, in bytes (paper: small deltas only).
    pub max_delta: i64,
    /// Confidence required to prefetch.
    pub confidence: u8,
}

impl Default for AvdConfig {
    fn default() -> Self {
        AvdConfig {
            entries: 64,
            max_delta: 64 * 1024,
            confidence: 2,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct AvdEntry {
    delta: i64,
    confidence: u8,
    lru: u64,
}

/// The AVD-prediction prefetcher. See the module docs.
#[derive(Debug)]
pub struct AvdPrefetcher {
    id: PrefetcherId,
    config: AvdConfig,
    level: Aggressiveness,
    table: HashMap<u32, AvdEntry>,
    tick: u64,
}

impl AvdPrefetcher {
    /// Creates an AVD prefetcher registered as `id`.
    pub fn new(id: PrefetcherId, config: AvdConfig) -> Self {
        AvdPrefetcher {
            id,
            config,
            level: Aggressiveness::Aggressive,
            table: HashMap::new(),
            tick: 0,
        }
    }
}

impl Prefetcher for AvdPrefetcher {
    fn name(&self) -> &'static str {
        "avd"
    }

    fn kind(&self) -> PrefetcherKind {
        PrefetcherKind::Dependence
    }

    fn on_demand_access(&mut self, ctx: &mut PrefetchCtx<'_>, ev: &DemandAccess) {
        // AVD tracks pointer loads only: value must look like an address.
        if ev.is_store || !layout::in_heap(ev.value) {
            return;
        }
        self.tick += 1;
        let tick = self.tick;
        let delta = i64::from(ev.addr) - i64::from(ev.value);
        if delta.abs() > self.config.max_delta {
            return;
        }

        // Prefetch from the *previous* confident delta before updating.
        if let Some(e) = self.table.get(&ev.pc) {
            if e.confidence >= self.config.confidence {
                // With a stable delta d = addr - value, the next instance of
                // this load will execute at address ~value (+ field offset)
                // and load ~value - d: prefetch one step ahead of the chase.
                let target = i64::from(ev.value) - e.delta;
                if target > 0 && target <= i64::from(Addr::MAX) {
                    ctx.request(PrefetchRequest {
                        addr: target as Addr,
                        id: self.id,
                        depth: 0,
                        pg: None,
                        root_pc: ev.pc,
                    });
                }
            }
        }

        // Train.
        let entry = self.table.entry(ev.pc).or_insert(AvdEntry {
            delta,
            confidence: 0,
            lru: tick,
        });
        if entry.delta == delta {
            entry.confidence = entry.confidence.saturating_add(1);
        } else {
            entry.delta = delta;
            entry.confidence = 0;
        }
        entry.lru = tick;

        if self.table.len() > self.config.entries {
            if let Some((&victim, _)) = self.table.iter().min_by_key(|(_, e)| e.lru) {
                self.table.remove(&victim);
            }
        }
    }

    fn set_aggressiveness(&mut self, level: Aggressiveness) {
        self.level = level;
    }

    fn aggressiveness(&self) -> Aggressiveness {
        self.level
    }

    fn save_state(&self, w: &mut SnapWriter) {
        w.u64(self.tick);
        // Sort by PC for a deterministic blob (LRU stamps are unique).
        let mut entries: Vec<(&u32, &AvdEntry)> = self.table.iter().collect();
        entries.sort_by_key(|(&pc, _)| pc);
        w.u32(entries.len() as u32);
        for (&pc, e) in entries {
            w.u32(pc);
            w.i64(e.delta);
            w.u8(e.confidence);
            w.u64(e.lru);
        }
    }

    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        self.tick = r.u64()?;
        let n = r.u32()? as usize;
        if n > self.config.entries + 1 {
            return Err(SnapshotError::Malformed(format!(
                "snapshot has {n} AVD entries, table holds {}",
                self.config.entries
            )));
        }
        self.table.clear();
        for _ in 0..n {
            let pc = r.u32()?;
            self.table.insert(
                pc,
                AvdEntry {
                    delta: r.i64()?,
                    confidence: r.u8()?,
                    lru: r.u64()?,
                },
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_mem::SimMemory;

    fn access(pf: &mut AvdPrefetcher, pc: u32, addr: Addr, value: u32) -> Vec<Addr> {
        let mem = SimMemory::new();
        let mut ctx = PrefetchCtx::new(&mem, 0);
        pf.on_demand_access(
            &mut ctx,
            &DemandAccess {
                pc,
                addr,
                value,
                hit: false,
                is_store: false,
                cycle: 0,
            },
        );
        ctx.take_requests().iter().map(|r| r.addr).collect()
    }

    #[test]
    fn stable_delta_predicts() {
        let mut pf = AvdPrefetcher::new(PrefetcherId(0), AvdConfig::default());
        // Chain with constant addr-value delta of -32 (next node 32 ahead).
        let base = layout::HEAP_BASE;
        let mut got = Vec::new();
        for i in 0..5u32 {
            let addr = base + i * 32;
            let value = base + (i + 1) * 32;
            got = access(&mut pf, 0x10, addr, value);
        }
        assert!(!got.is_empty(), "confident delta must prefetch");
        // delta = addr - value = -32; target = value - delta = value + 32.
        assert!(got.contains(&(base + 6 * 32)));
    }

    #[test]
    fn non_pointer_values_are_ignored() {
        let mut pf = AvdPrefetcher::new(PrefetcherId(0), AvdConfig::default());
        for i in 0..5u32 {
            assert!(access(&mut pf, 0x10, layout::HEAP_BASE + i * 32, 12345).is_empty());
        }
        assert!(pf.table.is_empty());
    }

    #[test]
    fn unstable_deltas_never_gain_confidence() {
        let mut pf = AvdPrefetcher::new(PrefetcherId(0), AvdConfig::default());
        let base = layout::HEAP_BASE;
        for i in 0..8u32 {
            // Random-ish values: delta changes every time.
            let got = access(&mut pf, 0x10, base + i * 32, base + (i * 7919) % 60000);
            assert!(got.is_empty());
        }
    }

    #[test]
    fn table_is_bounded() {
        let mut pf = AvdPrefetcher::new(
            PrefetcherId(0),
            AvdConfig {
                entries: 4,
                ..Default::default()
            },
        );
        for pc in 0..50u32 {
            access(
                &mut pf,
                pc,
                layout::HEAP_BASE + pc * 64,
                layout::HEAP_BASE + pc * 64 + 32,
            );
        }
        assert!(pf.table.len() <= 5);
    }
}
