//! Hardware jump-pointer prefetching (after Roth & Sohi, ISCA 1999) — one
//! of the storage-heavy LDS prefetchers the paper's introduction argues
//! against (≥64 KB of pointer state versus ECDP's 2.11 KB).
//!
//! The jump-pointer table remembers, for each recently traversed LDS node
//! (keyed by its block address), the node the traversal reached `interval`
//! hops later. When the traversal revisits a node, the stored jump target is
//! prefetched, hiding `interval` serialised hops of latency. The table only
//! helps on *repeat* traversals of stable structures, which is exactly its
//! structural weakness relative to content-directed prefetching.

use std::collections::VecDeque;

use sim_core::{
    Aggressiveness, DemandAccess, PrefetchCtx, PrefetchRequest, Prefetcher, PrefetcherId,
    PrefetcherKind, SnapReader, SnapWriter, SnapshotError,
};
use sim_mem::{block_of, layout, Addr};

/// Jump-pointer prefetcher parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JumpPointerConfig {
    /// Jump-pointer table entries (direct mapped on block address).
    pub entries: usize,
    /// Hops between a node and its recorded jump target.
    pub interval: usize,
}

impl JumpPointerConfig {
    /// A 64 KB table: 8192 entries x (4 B tag + 4 B target).
    pub fn paper_64kb() -> Self {
        JumpPointerConfig {
            entries: 8192,
            interval: 4,
        }
    }

    /// Storage in bytes.
    pub fn storage_bytes(&self) -> usize {
        self.entries * 8
    }
}

impl Default for JumpPointerConfig {
    fn default() -> Self {
        Self::paper_64kb()
    }
}

/// The jump-pointer prefetcher. See the module docs.
#[derive(Debug)]
pub struct JumpPointerPrefetcher {
    id: PrefetcherId,
    config: JumpPointerConfig,
    level: Aggressiveness,
    /// tag -> jump target, direct mapped.
    table: Vec<Option<(Addr, Addr)>>,
    /// Recent pointer-load history (the traversal window).
    history: VecDeque<Addr>,
}

impl JumpPointerPrefetcher {
    /// Creates a jump-pointer prefetcher registered as `id`.
    pub fn new(id: PrefetcherId, config: JumpPointerConfig) -> Self {
        JumpPointerPrefetcher {
            id,
            config,
            level: Aggressiveness::Aggressive,
            table: vec![None; config.entries],
            history: VecDeque::new(),
        }
    }

    fn slot(&self, block: Addr) -> usize {
        ((block / sim_mem::BLOCK_BYTES) as usize) % self.config.entries
    }

    /// Number of traversal-window entries currently held (bounded at
    /// `interval + 1` — exposed for the storage property tests).
    pub fn history_len(&self) -> usize {
        self.history.len()
    }
}

impl Prefetcher for JumpPointerPrefetcher {
    fn name(&self) -> &'static str {
        "jump-pointer"
    }

    fn kind(&self) -> PrefetcherKind {
        PrefetcherKind::Dependence
    }

    fn on_demand_access(&mut self, ctx: &mut PrefetchCtx<'_>, ev: &DemandAccess) {
        // Only pointer-chase traffic trains the table: loads whose target
        // lives in the heap and whose value is itself heap-like.
        if ev.is_store || !layout::in_heap(ev.addr) {
            return;
        }
        let block = block_of(ev.addr);

        // Record: the node visited `interval` hops ago jumps to this node.
        self.history.push_back(block);
        if self.history.len() > self.config.interval {
            if let Some(past) = self.history.pop_front() {
                let slot = self.slot(past);
                self.table[slot] = Some((past, block));
            }
        }

        // Fire: if this node has a recorded jump target, prefetch it
        // (and, at higher aggressiveness, chase the table transitively).
        let hops = match self.level {
            Aggressiveness::VeryConservative => 1,
            Aggressiveness::Conservative => 1,
            Aggressiveness::Moderate => 2,
            Aggressiveness::Aggressive => 3,
        };
        let mut cur = block;
        for _ in 0..hops {
            let slot = self.slot(cur);
            match self.table[slot] {
                Some((tag, target)) if tag == cur && target != cur => {
                    ctx.request(PrefetchRequest {
                        addr: target,
                        id: self.id,
                        depth: 0,
                        pg: None,
                        root_pc: ev.pc,
                    });
                    cur = target;
                }
                _ => break,
            }
        }
    }

    fn set_aggressiveness(&mut self, level: Aggressiveness) {
        self.level = level;
    }

    fn aggressiveness(&self) -> Aggressiveness {
        self.level
    }

    fn save_state(&self, w: &mut SnapWriter) {
        w.u32(self.history.len() as u32);
        for &h in &self.history {
            w.u32(h);
        }
        let filled = self.table.iter().filter(|e| e.is_some()).count();
        w.u64(filled as u64);
        for (slot, e) in self.table.iter().enumerate() {
            let Some((tag, target)) = e else { continue };
            w.u32(slot as u32);
            w.u32(*tag);
            w.u32(*target);
        }
    }

    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        let n = r.u32()? as usize;
        if n > self.config.interval + 1 {
            return Err(SnapshotError::Malformed(format!(
                "snapshot has {n} traversal-window entries, window holds {}",
                self.config.interval
            )));
        }
        self.history.clear();
        for _ in 0..n {
            self.history.push_back(r.u32()?);
        }
        for e in &mut self.table {
            *e = None;
        }
        let n = r.len_prefix()?;
        for _ in 0..n {
            let slot = r.u32()? as usize;
            if slot >= self.table.len() {
                return Err(SnapshotError::Malformed(format!(
                    "jump-pointer slot {slot} out of range"
                )));
            }
            let tag = r.u32()?;
            let target = r.u32()?;
            self.table[slot] = Some((tag, target));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_mem::SimMemory;

    fn access(pf: &mut JumpPointerPrefetcher, addr: Addr) -> Vec<Addr> {
        let mem = SimMemory::new();
        let mut ctx = PrefetchCtx::new(&mem, 0);
        pf.on_demand_access(
            &mut ctx,
            &DemandAccess {
                pc: 1,
                addr,
                value: 0,
                hit: false,
                is_store: false,
                cycle: 0,
            },
        );
        ctx.take_requests().iter().map(|r| r.addr).collect()
    }

    /// A scattered traversal path (distinct blocks).
    fn path(n: usize) -> Vec<Addr> {
        (0..n as u32)
            .map(|i| layout::HEAP_BASE + i * 4096)
            .collect()
    }

    #[test]
    fn second_traversal_fires_jump_pointers() {
        let mut pf = JumpPointerPrefetcher::new(PrefetcherId(0), JumpPointerConfig::default());
        let nodes = path(12);
        // First traversal: trains, nothing to fire.
        for &n in &nodes {
            assert!(access(&mut pf, n).is_empty());
        }
        // Second traversal: each node jumps `interval` ahead.
        let got = access(&mut pf, nodes[0]);
        assert!(!got.is_empty(), "revisit must fire");
        assert_eq!(got[0], block_of(nodes[4]), "jump interval of 4 hops");
    }

    #[test]
    fn non_heap_accesses_are_ignored() {
        let mut pf = JumpPointerPrefetcher::new(PrefetcherId(0), JumpPointerConfig::default());
        for i in 0..20u32 {
            assert!(access(&mut pf, 0x0800_0000 + i * 4096).is_empty());
        }
        assert!(pf.history.is_empty());
    }

    #[test]
    fn aggressive_mode_chases_transitively() {
        let mut pf = JumpPointerPrefetcher::new(PrefetcherId(0), JumpPointerConfig::default());
        let nodes = path(16);
        for &n in &nodes {
            access(&mut pf, n);
        }
        let got = access(&mut pf, nodes[0]);
        // Aggressive: up to 3 transitive jumps -> nodes[4], nodes[8], nodes[12].
        assert_eq!(got.len(), 3);
        assert_eq!(got[1], block_of(nodes[8]));
    }

    #[test]
    fn storage_matches_headline() {
        assert_eq!(JumpPointerConfig::paper_64kb().storage_bytes(), 64 * 1024);
    }
}
