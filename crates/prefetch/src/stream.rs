//! The baseline stream prefetcher (IBM POWER4/POWER5 style, as described in
//! the paper's §2.1 and in Srinath et al., HPCA 2007).
//!
//! The prefetcher tracks up to 32 independent streams. A stream is allocated
//! on an L2 demand miss, trains on nearby misses to establish a direction,
//! and then monitors a region of the address space: demand accesses inside
//! the monitor region advance it and trigger `degree` prefetches, keeping
//! the prefetched frontier up to `distance` blocks ahead of the demand
//! stream. *Prefetch Distance* and *Prefetch Degree* are set by the
//! aggressiveness level (paper Table 2).

use sim_core::{
    Addr, Aggressiveness, DemandAccess, PrefetchCtx, PrefetchRequest, Prefetcher, PrefetcherId,
    PrefetcherKind, SnapReader, SnapWriter, SnapshotError,
};
use sim_mem::{block_of, BLOCK_BYTES};

/// Stream prefetcher parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamConfig {
    /// Number of concurrently tracked streams (paper: 32).
    pub num_streams: usize,
    /// Blocks within which a second miss trains a new stream's direction.
    pub train_window_blocks: u32,
    /// Misses required to move from training to monitoring.
    pub train_count: u32,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            num_streams: 32,
            train_window_blocks: 16,
            train_count: 2,
        }
    }
}

/// Distance/degree pairs for the four aggressiveness levels (Table 2).
const LEVELS: [(u32, u32); 4] = [(4, 1), (8, 1), (16, 2), (32, 4)];

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StreamState {
    Training { first_block: u32, hits: u32 },
    Monitoring,
}

#[derive(Debug, Clone, Copy)]
struct StreamEntry {
    state: StreamState,
    /// +1 or -1 block direction.
    dir: i64,
    /// Last demand block index that advanced the stream.
    last_demand: u32,
    /// Next block index to prefetch (the frontier).
    frontier: u32,
    /// LRU stamp.
    last_touch: u64,
    valid: bool,
}

/// The baseline stream prefetcher. See the module docs.
///
/// # Example
///
/// ```
/// use prefetch::StreamPrefetcher;
/// use sim_core::{Machine, MachineConfig, PrefetcherId};
///
/// let mut machine = Machine::new(MachineConfig::default());
/// let id = machine.add_prefetcher(Box::new(StreamPrefetcher::new(
///     PrefetcherId(0),
///     Default::default(),
/// )));
/// assert_eq!(id, PrefetcherId(0));
/// ```
#[derive(Debug)]
pub struct StreamPrefetcher {
    id: PrefetcherId,
    config: StreamConfig,
    level: Aggressiveness,
    streams: Vec<StreamEntry>,
    tick: u64,
}

impl StreamPrefetcher {
    /// Creates a stream prefetcher that will be registered as `id`.
    pub fn new(id: PrefetcherId, config: StreamConfig) -> Self {
        StreamPrefetcher {
            id,
            config,
            level: Aggressiveness::Aggressive,
            streams: vec![
                StreamEntry {
                    state: StreamState::Training {
                        first_block: 0,
                        hits: 0
                    },
                    dir: 1,
                    last_demand: 0,
                    frontier: 0,
                    last_touch: 0,
                    valid: false,
                };
                config.num_streams
            ],
            tick: 0,
        }
    }

    fn distance(&self) -> u32 {
        LEVELS[self.level.index()].0
    }

    fn degree(&self) -> u32 {
        LEVELS[self.level.index()].1
    }

    /// Finds a stream whose monitor region covers `block` (within
    /// `distance` blocks behind the frontier, in stream direction).
    fn find_stream(&mut self, block: u32) -> Option<usize> {
        let train_window = self.config.train_window_blocks;
        let distance = self.distance();
        self.streams.iter().position(|s| {
            if !s.valid {
                return false;
            }
            match s.state {
                StreamState::Training { first_block, .. } => {
                    block.abs_diff(first_block) <= train_window
                }
                StreamState::Monitoring => {
                    // The monitor region spans from a little behind the last
                    // demand to the frontier.
                    let b = i64::from(block);
                    let lo;
                    let hi;
                    if s.dir > 0 {
                        lo = i64::from(s.last_demand) - 4;
                        hi = i64::from(s.frontier) + i64::from(distance);
                    } else {
                        lo = i64::from(s.frontier) - i64::from(distance);
                        hi = i64::from(s.last_demand) + 4;
                    }
                    b >= lo && b <= hi
                }
            }
        })
    }

    fn allocate(&mut self, block: u32) {
        let slot = self
            .streams
            .iter()
            .position(|s| !s.valid)
            .or_else(|| {
                self.streams
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, s)| s.last_touch)
                    .map(|(i, _)| i)
            })
            .expect("stream table is never empty");
        self.streams[slot] = StreamEntry {
            state: StreamState::Training {
                first_block: block,
                hits: 0,
            },
            dir: 1,
            last_demand: block,
            frontier: block,
            last_touch: self.tick,
            valid: true,
        };
    }

    fn emit(&self, ctx: &mut PrefetchCtx<'_>, block: u32) {
        let addr = (block as u64 * u64::from(BLOCK_BYTES)) as Addr;
        ctx.request(PrefetchRequest {
            addr,
            id: self.id,
            depth: 0,
            pg: None,
            root_pc: 0,
        });
    }
}

impl Prefetcher for StreamPrefetcher {
    fn name(&self) -> &'static str {
        "stream"
    }

    fn kind(&self) -> PrefetcherKind {
        PrefetcherKind::Stream
    }

    fn on_demand_access(&mut self, ctx: &mut PrefetchCtx<'_>, ev: &DemandAccess) {
        self.tick += 1;
        let block = block_of(ev.addr) / BLOCK_BYTES;
        let distance = self.distance();
        let degree = self.degree();
        let train_count = self.config.train_count;

        if let Some(i) = self.find_stream(block) {
            self.streams[i].last_touch = self.tick;
            match self.streams[i].state {
                StreamState::Training { first_block, hits } => {
                    if block == first_block {
                        return;
                    }
                    let hits = hits + 1;
                    // (blocks farther than the training window never match
                    // this stream, so reaching here implies a near miss.)
                    if hits >= train_count {
                        let dir: i64 = if block >= first_block { 1 } else { -1 };
                        let s = &mut self.streams[i];
                        s.state = StreamState::Monitoring;
                        s.dir = dir;
                        s.last_demand = block;
                        s.frontier = block;
                        // Kick off the stream: prefetch `degree` blocks.
                        for k in 1..=degree {
                            let b = i64::from(block) + dir * i64::from(k);
                            if b >= 0 {
                                let b = b as u32;
                                self.streams[i].frontier = b;
                                self.emit(ctx, b);
                            }
                        }
                    } else {
                        let s = &mut self.streams[i];
                        s.state = StreamState::Training { first_block, hits };
                    }
                }
                StreamState::Monitoring => {
                    let s = self.streams[i];
                    // Advance only on *near-monotonic* forward progress:
                    // genuine streams move a few blocks at a time in one
                    // direction. Random-order accesses inside a dense
                    // region must not keep a stream alive (real stream
                    // engines confirm sequential progress).
                    let step = (i64::from(block) - i64::from(s.last_demand)) * s.dir;
                    let progressed = (1..=8).contains(&step);
                    if progressed {
                        self.streams[i].last_demand = block;
                        // Issue up to `degree` prefetches while the frontier
                        // is within `distance` of the demand stream.
                        let mut issued = 0;
                        while issued < degree {
                            let next = i64::from(self.streams[i].frontier) + self.streams[i].dir;
                            let lead = (next - i64::from(block)) * self.streams[i].dir;
                            if next < 0 || lead > i64::from(distance) {
                                break;
                            }
                            self.streams[i].frontier = next as u32;
                            self.emit(ctx, next as u32);
                            issued += 1;
                        }
                    }
                }
            }
        } else if !ev.hit {
            self.allocate(block);
        }
    }

    fn set_aggressiveness(&mut self, level: Aggressiveness) {
        self.level = level;
    }

    fn aggressiveness(&self) -> Aggressiveness {
        self.level
    }

    fn save_state(&self, w: &mut SnapWriter) {
        w.u64(self.tick);
        w.u32(self.streams.len() as u32);
        for s in &self.streams {
            match s.state {
                StreamState::Training { first_block, hits } => {
                    w.u8(0);
                    w.u32(first_block);
                    w.u32(hits);
                }
                StreamState::Monitoring => w.u8(1),
            }
            w.i64(s.dir);
            w.u32(s.last_demand);
            w.u32(s.frontier);
            w.u64(s.last_touch);
            w.bool(s.valid);
        }
    }

    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        self.tick = r.u64()?;
        let n = r.u32()? as usize;
        if n != self.streams.len() {
            return Err(SnapshotError::Malformed(format!(
                "snapshot has {n} streams, this prefetcher tracks {}",
                self.streams.len()
            )));
        }
        for s in &mut self.streams {
            s.state = match r.u8()? {
                0 => StreamState::Training {
                    first_block: r.u32()?,
                    hits: r.u32()?,
                },
                1 => StreamState::Monitoring,
                t => return Err(SnapshotError::Malformed(format!("stream state tag {t}"))),
            };
            s.dir = r.i64()?;
            s.last_demand = r.u32()?;
            s.frontier = r.u32()?;
            s.last_touch = r.u64()?;
            s.valid = r.bool()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_mem::SimMemory;

    fn access(pf: &mut StreamPrefetcher, mem: &SimMemory, addr: Addr, hit: bool) -> Vec<Addr> {
        let mut ctx = PrefetchCtx::new(mem, 0);
        pf.on_demand_access(
            &mut ctx,
            &DemandAccess {
                pc: 0x10,
                addr,
                value: 0,
                hit,
                is_store: false,
                cycle: 0,
            },
        );
        ctx.take_requests().iter().map(|r| r.addr).collect()
    }

    #[test]
    fn ascending_miss_stream_triggers_prefetches() {
        let mem = SimMemory::new();
        let mut pf = StreamPrefetcher::new(PrefetcherId(0), StreamConfig::default());
        let base = 0x4000_0000;
        assert!(access(&mut pf, &mem, base, false).is_empty()); // allocate
        assert!(access(&mut pf, &mem, base + 64, false).is_empty()); // train
        let reqs = access(&mut pf, &mem, base + 128, false); // direction set
        assert!(!reqs.is_empty(), "stream should start prefetching");
        assert!(reqs.iter().all(|&a| a > base + 128), "prefetch ahead");
    }

    #[test]
    fn monitoring_stream_advances_with_demand() {
        let mem = SimMemory::new();
        let mut pf = StreamPrefetcher::new(PrefetcherId(0), StreamConfig::default());
        let base = 0x4000_0000;
        access(&mut pf, &mem, base, false);
        access(&mut pf, &mem, base + 64, false);
        access(&mut pf, &mem, base + 128, false);
        let mut total = 0;
        for i in 3..20u32 {
            total += access(&mut pf, &mem, base + i * 64, true).len();
        }
        assert!(
            total > 10,
            "advancing stream should keep prefetching: {total}"
        );
    }

    #[test]
    fn descending_stream_is_detected() {
        let mem = SimMemory::new();
        let mut pf = StreamPrefetcher::new(PrefetcherId(0), StreamConfig::default());
        let base = 0x4000_8000;
        access(&mut pf, &mem, base, false);
        access(&mut pf, &mem, base - 64, false);
        let reqs = access(&mut pf, &mem, base - 128, false);
        assert!(!reqs.is_empty());
        assert!(reqs.iter().all(|&a| a < base - 128), "prefetch downward");
    }

    #[test]
    fn aggressiveness_scales_degree() {
        let mem = SimMemory::new();
        for (level, (_, degree)) in Aggressiveness::ALL.iter().zip(LEVELS) {
            let mut pf = StreamPrefetcher::new(PrefetcherId(0), StreamConfig::default());
            pf.set_aggressiveness(*level);
            let base = 0x4000_0000;
            access(&mut pf, &mem, base, false);
            access(&mut pf, &mem, base + 64, false);
            let reqs = access(&mut pf, &mem, base + 128, false);
            assert_eq!(reqs.len(), degree as usize, "level {level:?}");
        }
    }

    #[test]
    fn random_misses_do_not_stream() {
        let mem = SimMemory::new();
        let mut pf = StreamPrefetcher::new(PrefetcherId(0), StreamConfig::default());
        // Far-apart misses never train any stream.
        let mut total = 0;
        for i in 0..32u32 {
            total += access(&mut pf, &mem, 0x4000_0000 + i * 0x10_0000, false).len();
        }
        assert_eq!(total, 0);
    }

    #[test]
    fn stream_table_replaces_lru() {
        let mem = SimMemory::new();
        let mut pf = StreamPrefetcher::new(
            PrefetcherId(0),
            StreamConfig {
                num_streams: 2,
                ..Default::default()
            },
        );
        // Allocate three streams; the first should be evicted.
        access(&mut pf, &mem, 0x4000_0000, false);
        access(&mut pf, &mem, 0x4100_0000, false);
        access(&mut pf, &mem, 0x4200_0000, false);
        let valid = pf.streams.iter().filter(|s| s.valid).count();
        assert_eq!(valid, 2);
    }
}
