//! Global History Buffer prefetching with global delta correlation (G/DC) —
//! Nesbit & Smith, HPCA 2004.
//!
//! The GHB is a circular buffer of recent miss addresses; an index table
//! keyed by the last pair of address deltas points at the most recent
//! occurrence of that delta pair. On a miss, the prefetcher looks up the
//! current delta pair, walks forward from the previous occurrence, and
//! prefetches along the replayed delta sequence. G/DC captures both
//! streaming (constant-delta) and correlated irregular patterns, which is
//! why the paper evaluates it *alone* rather than with the stream
//! prefetcher (§6.3).

use std::collections::HashMap;

use sim_core::{
    Aggressiveness, DemandAccess, PrefetchCtx, PrefetchRequest, Prefetcher, PrefetcherId,
    PrefetcherKind, SnapReader, SnapWriter, SnapshotError,
};
use sim_mem::{block_of, Addr};

/// GHB prefetcher parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GhbConfig {
    /// History buffer length (paper: 1k entries, ≈12 KB total storage).
    pub buffer_entries: usize,
    /// Maximum index-table entries (bounds storage like real hardware).
    pub index_entries: usize,
}

impl Default for GhbConfig {
    fn default() -> Self {
        GhbConfig {
            buffer_entries: 1024,
            index_entries: 1024,
        }
    }
}

/// Prefetch degree per aggressiveness level.
const DEGREE_LEVELS: [usize; 4] = [1, 2, 4, 8];

/// The GHB G/DC prefetcher. See the module docs.
#[derive(Debug)]
pub struct GhbPrefetcher {
    id: PrefetcherId,
    config: GhbConfig,
    level: Aggressiveness,
    /// The tail of the miss-block history. Positions are *absolute*
    /// (monotonically growing across the whole run); `base` is the
    /// absolute position of `history[0]`, and entries older than the
    /// buffer window are periodically compacted away so the vector
    /// stays O(`buffer_entries`) instead of growing with the run.
    history: Vec<Addr>,
    /// Absolute position of `history[0]`.
    base: usize,
    /// (delta1, delta2) -> last absolute position at which that pair
    /// ended. Stale positions (outside the buffer window) are rejected
    /// at lookup time.
    index: HashMap<(i64, i64), usize>,
}

impl GhbPrefetcher {
    /// Creates a GHB prefetcher registered as `id`.
    pub fn new(id: PrefetcherId, config: GhbConfig) -> Self {
        GhbPrefetcher {
            id,
            config,
            level: Aggressiveness::Aggressive,
            history: Vec::new(),
            base: 0,
            index: HashMap::new(),
        }
    }

    fn degree(&self) -> usize {
        DEGREE_LEVELS[self.level.index()]
    }

    /// Total misses recorded, i.e. the absolute position one past the
    /// newest history entry.
    fn total(&self) -> usize {
        self.base + self.history.len()
    }

    /// The address delta ending at absolute position `pos`, if both
    /// endpoints are still in the retained window.
    fn delta(&self, pos: usize) -> Option<i64> {
        if pos <= self.base || pos >= self.total() {
            return None;
        }
        let i = pos - self.base;
        Some(i64::from(self.history[i]) - i64::from(self.history[i - 1]))
    }

    /// Number of history entries currently retained (bounded at
    /// `4 * buffer_entries` by compaction — exposed for the storage
    /// property tests).
    pub fn history_len(&self) -> usize {
        self.history.len()
    }

    /// Number of index-table entries (bounded at `index_entries`).
    pub fn index_len(&self) -> usize {
        self.index.len()
    }

    /// Drops history entries that can no longer be reached by any walk.
    ///
    /// A walk starting from an index match accesses positions no older
    /// than `pos - buffer_entries` (older matches are rejected before
    /// walking), so retaining the last `buffer_entries + 2` entries is
    /// behavior-identical. Compacting only once the vector reaches 4x
    /// the window keeps the amortized cost at O(1) per miss.
    fn maybe_compact(&mut self) {
        let keep = self.config.buffer_entries + 2;
        if self.history.len() > (4 * self.config.buffer_entries).max(keep) {
            let drop = self.history.len() - keep;
            self.history.drain(..drop);
            self.base += drop;
        }
    }
}

impl Prefetcher for GhbPrefetcher {
    fn name(&self) -> &'static str {
        "ghb-gdc"
    }

    fn kind(&self) -> PrefetcherKind {
        PrefetcherKind::Correlation
    }

    fn on_demand_access(&mut self, ctx: &mut PrefetchCtx<'_>, ev: &DemandAccess) {
        if ev.hit {
            return;
        }
        let block = block_of(ev.addr);
        self.history.push(block);
        self.maybe_compact();
        let pos = self.total() - 1;

        // Current delta pair (d_{n-1}, d_n).
        let (Some(d2), Some(d1)) = (
            self.delta(pos),
            pos.checked_sub(1).and_then(|p| self.delta(p)),
        ) else {
            return;
        };

        let key = (d1, d2);
        let prev = self.index.get(&key).copied();
        if self.index.len() < self.config.index_entries || self.index.contains_key(&key) {
            self.index.insert(key, pos);
        }

        let Some(mut walk) = prev else { return };
        // The match must still be within the buffer window.
        if pos - walk > self.config.buffer_entries {
            return;
        }

        // Collect the deltas that followed the previous occurrence. If the
        // history runs out before `degree` deltas (common for constant
        // strides, where the match is the immediately preceding position),
        // extrapolate by replaying the collected sequence cyclically.
        let degree = self.degree();
        let mut deltas = Vec::with_capacity(degree);
        while deltas.len() < degree {
            walk += 1;
            if walk >= pos {
                break;
            }
            match self.delta(walk) {
                Some(d) => deltas.push(d),
                None => break,
            }
        }
        if deltas.is_empty() {
            deltas.push(d2);
        }

        let mut addr = i64::from(block);
        for k in 0..degree {
            addr += deltas[k % deltas.len()];
            if addr <= 0 || addr > i64::from(Addr::MAX) {
                break;
            }
            ctx.request(PrefetchRequest {
                addr: addr as Addr,
                id: self.id,
                depth: 0,
                pg: None,
                root_pc: ev.pc,
            });
        }
    }

    fn set_aggressiveness(&mut self, level: Aggressiveness) {
        self.level = level;
    }

    fn aggressiveness(&self) -> Aggressiveness {
        self.level
    }

    fn save_state(&self, w: &mut SnapWriter) {
        w.u64(self.base as u64);
        w.u64(self.history.len() as u64);
        for &a in &self.history {
            w.u32(a);
        }
        // The index is a HashMap: emit entries sorted by key so the blob
        // is deterministic for a given logical state.
        let mut entries: Vec<(&(i64, i64), &usize)> = self.index.iter().collect();
        entries.sort();
        w.u64(entries.len() as u64);
        for (&(d1, d2), &pos) in entries {
            w.i64(d1);
            w.i64(d2);
            w.u64(pos as u64);
        }
    }

    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        self.base = r.u64()? as usize;
        let n = r.len_prefix()?;
        self.history.clear();
        for _ in 0..n {
            self.history.push(r.u32()?);
        }
        let n = r.len_prefix()?;
        self.index.clear();
        for _ in 0..n {
            let d1 = r.i64()?;
            let d2 = r.i64()?;
            let pos = r.u64()? as usize;
            self.index.insert((d1, d2), pos);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_mem::SimMemory;

    fn miss(pf: &mut GhbPrefetcher, mem: &SimMemory, addr: Addr) -> Vec<Addr> {
        let mut ctx = PrefetchCtx::new(mem, 0);
        pf.on_demand_access(
            &mut ctx,
            &DemandAccess {
                pc: 1,
                addr,
                value: 0,
                hit: false,
                is_store: false,
                cycle: 0,
            },
        );
        ctx.take_requests().iter().map(|r| r.addr).collect()
    }

    #[test]
    fn constant_stride_is_prefetched() {
        let mem = SimMemory::new();
        let mut pf = GhbPrefetcher::new(PrefetcherId(0), GhbConfig::default());
        let base = 0x4000_0000;
        // Strided misses: after the delta pair repeats, prefetches follow
        // the stride.
        let mut got = Vec::new();
        for i in 0..6u32 {
            got = miss(&mut pf, &mem, base + i * 128);
        }
        assert!(!got.is_empty(), "stride should be recognised");
        assert_eq!(got[0], base + 6 * 128);
    }

    #[test]
    fn repeated_irregular_delta_sequence_is_replayed() {
        let mem = SimMemory::new();
        let mut pf = GhbPrefetcher::new(PrefetcherId(0), GhbConfig::default());
        let base: Addr = 0x4000_0000;
        let deltas: [i64; 6] = [0x40, 0x1000, 0x40, 0x200, 0x40, 0x1000];
        let mut addr = i64::from(base);
        let mut seq = vec![base];
        for d in deltas {
            addr += d;
            seq.push(addr as Addr);
        }
        // Train on the sequence twice; second pass should predict.
        let mut predicted_any = false;
        for _ in 0..2 {
            for &a in &seq {
                if !miss(&mut pf, &mem, a).is_empty() {
                    predicted_any = true;
                }
            }
        }
        assert!(predicted_any, "repeated delta pairs should predict");
    }

    #[test]
    fn first_misses_never_predict() {
        let mem = SimMemory::new();
        let mut pf = GhbPrefetcher::new(PrefetcherId(0), GhbConfig::default());
        assert!(miss(&mut pf, &mem, 0x4000_0000).is_empty());
        assert!(miss(&mut pf, &mem, 0x4000_1000).is_empty());
    }

    #[test]
    fn degree_scales_with_aggressiveness() {
        let mem = SimMemory::new();
        let mut pf = GhbPrefetcher::new(PrefetcherId(0), GhbConfig::default());
        pf.set_aggressiveness(Aggressiveness::VeryConservative);
        let base = 0x4000_0000;
        let mut got = Vec::new();
        for i in 0..8u32 {
            got = miss(&mut pf, &mem, base + i * 128);
        }
        assert_eq!(got.len(), 1);
        let mut pf = GhbPrefetcher::new(PrefetcherId(0), GhbConfig::default());
        pf.set_aggressiveness(Aggressiveness::Aggressive);
        let mut got = Vec::new();
        for i in 0..8u32 {
            got = miss(&mut pf, &mem, base + i * 128);
        }
        assert!(got.len() > 1);
    }

    #[test]
    fn stale_matches_outside_window_are_ignored() {
        let mem = SimMemory::new();
        let mut pf = GhbPrefetcher::new(
            PrefetcherId(0),
            GhbConfig {
                buffer_entries: 4,
                index_entries: 1024,
            },
        );
        let base = 0x4000_0000;
        for i in 0..3u32 {
            miss(&mut pf, &mem, base + i * 128);
        }
        // Flood the window with unrelated misses.
        for i in 0..8u32 {
            miss(&mut pf, &mem, 0x4800_0000 + i * 0x10_0000);
        }
        // The old stride pair is now outside the 4-entry window.
        let got = miss(&mut pf, &mem, base + 3 * 128);
        let _ = got; // prediction may be empty or fresh; must not panic
    }
}
