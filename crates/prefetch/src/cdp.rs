//! Content-directed prefetching (Cooksey, Jourdan & Grunwald, ASPLOS 2002) —
//! the stateless pointer-scanning LDS prefetcher the paper builds ECDP on.
//!
//! On a last-level-cache fill, the prefetcher scans the 16 pointer-sized
//! words of the incoming block. A word whose high-order *compare bits*
//! match those of the block's own address is predicted to be a virtual
//! address and prefetched. Prefetched blocks are scanned recursively up to
//! the *maximum recursion depth*, which is the CDP aggressiveness knob
//! (paper Table 2: depths 1–4).
//!
//! The scan of **demand-miss** fills can be filtered through a
//! [`ScanFilter`]. The base CDP uses [`AllowAll`]; the `ecdp` crate installs
//! the compiler-generated hint bit vectors here, and the GRP/per-load-filter
//! comparisons install their coarser filters. Blocks fetched by CDP's own
//! prefetches are always scanned unfiltered, exactly as §3 specifies.

use sim_core::{
    Aggressiveness, FillEvent, PgTag, PrefetchCtx, PrefetchRequest, Prefetcher, PrefetcherId,
    PrefetcherKind,
};
use sim_mem::{block_of, Addr, BLOCK_BYTES};

/// Decides which pointers found in a demand-fetched block may be prefetched.
///
/// `pc` is the static load whose miss fetched the block; `offset` is the
/// byte offset of the candidate pointer from the (word-aligned) byte the
/// load accessed — the paper's `PG(L, X)` coordinates.
pub trait ScanFilter {
    /// True if the pointer group `PG(pc, offset)` may generate prefetches.
    fn allow(&self, pc: u32, offset: i32) -> bool;

    /// True if blocks fetched by `pc`'s demand misses should be scanned at
    /// all (coarse per-load gate, used by the GRP comparison).
    fn scan_load(&self, _pc: u32) -> bool {
        true
    }
}

/// The unfiltered scan of the original CDP.
#[derive(Debug, Default, Clone, Copy)]
pub struct AllowAll;

impl ScanFilter for AllowAll {
    fn allow(&self, _pc: u32, _offset: i32) -> bool {
        true
    }
}

/// Content-directed prefetcher parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CdpConfig {
    /// High-order address bits compared by the pointer predictor
    /// (paper §5: 8 of 32).
    pub compare_bits: u32,
}

impl Default for CdpConfig {
    fn default() -> Self {
        CdpConfig { compare_bits: 8 }
    }
}

/// Maximum recursion depth for the four aggressiveness levels (Table 2).
const DEPTH_LEVELS: [u8; 4] = [1, 2, 3, 4];

/// The content-directed prefetcher. See the module docs.
///
/// # Example
///
/// ```
/// use prefetch::{AllowAll, CdpConfig, ContentDirectedPrefetcher};
/// use sim_core::PrefetcherId;
///
/// let cdp = ContentDirectedPrefetcher::new(
///     PrefetcherId(1),
///     CdpConfig::default(),
///     Box::new(AllowAll),
/// );
/// assert_eq!(cdp.max_depth(), 4); // aggressive by default
/// ```
pub struct ContentDirectedPrefetcher {
    id: PrefetcherId,
    config: CdpConfig,
    level: Aggressiveness,
    filter: Box<dyn ScanFilter>,
}

impl ContentDirectedPrefetcher {
    /// Creates a CDP registered as `id` with the given scan filter.
    pub fn new(id: PrefetcherId, config: CdpConfig, filter: Box<dyn ScanFilter>) -> Self {
        ContentDirectedPrefetcher {
            id,
            config,
            level: Aggressiveness::Aggressive,
            filter,
        }
    }

    /// Current maximum recursion depth (set by the aggressiveness level).
    pub fn max_depth(&self) -> u8 {
        DEPTH_LEVELS[self.level.index()]
    }

    /// True if `word`, found in the block at `block_addr`, is predicted to
    /// be a virtual address by the compare-bits matcher.
    pub fn looks_like_pointer(&self, block_addr: Addr, word: u32) -> bool {
        if word == 0 {
            return false;
        }
        let shift = 32 - self.config.compare_bits;
        (word >> shift) == (block_addr >> shift)
    }

    fn scan(
        &mut self,
        ctx: &mut PrefetchCtx<'_>,
        block_addr: Addr,
        depth: u8,
        filtered_by: Option<(u32, Addr)>,
        root_pc: u32,
        inherited_pg: Option<PgTag>,
    ) {
        let words = ctx.block_words(block_addr);
        for (i, &w) in words.iter().enumerate() {
            if !self.looks_like_pointer(block_addr, w) {
                continue;
            }
            // Skip pointers into the same block: the prefetch would be
            // dropped at the L2 probe anyway.
            if block_of(w) == block_addr {
                continue;
            }
            let pg = match filtered_by {
                Some((pc, trigger_addr)) => {
                    let trigger_off = (trigger_addr & (BLOCK_BYTES - 1)) & !3;
                    let offset = (i as i32) * 4 - trigger_off as i32;
                    if !self.filter.allow(pc, offset) {
                        continue;
                    }
                    Some(PgTag {
                        pc,
                        offset: offset as i16,
                    })
                }
                // Recursive scans prefetch every pointer and inherit the
                // root pointer group: the paper defines a PG's prefetches
                // as *all* prefetches generated on its behalf, including
                // recursive ones, so junk spawned downstream counts against
                // the group during profiling.
                None => inherited_pg,
            };
            ctx.request(PrefetchRequest {
                addr: w,
                id: self.id,
                depth,
                pg,
                root_pc,
            });
        }
    }
}

impl std::fmt::Debug for ContentDirectedPrefetcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ContentDirectedPrefetcher")
            .field("id", &self.id)
            .field("level", &self.level)
            .finish()
    }
}

impl Prefetcher for ContentDirectedPrefetcher {
    fn name(&self) -> &'static str {
        "cdp"
    }

    fn kind(&self) -> PrefetcherKind {
        PrefetcherKind::ContentDirected
    }

    fn on_fill(&mut self, ctx: &mut PrefetchCtx<'_>, ev: &FillEvent) {
        match ev.kind {
            sim_core::AccessKind::DemandLoad => {
                if !self.filter.scan_load(ev.trigger_pc) {
                    return;
                }
                self.scan(
                    ctx,
                    ev.block_addr,
                    1,
                    Some((ev.trigger_pc, ev.trigger_addr)),
                    ev.trigger_pc,
                    None,
                );
            }
            sim_core::AccessKind::Prefetch(id) if id == self.id && ev.depth < self.max_depth() => {
                self.scan(ctx, ev.block_addr, ev.depth + 1, None, ev.trigger_pc, ev.pg);
            }
            _ => {}
        }
    }

    fn set_aggressiveness(&mut self, level: Aggressiveness) {
        self.level = level;
    }

    fn aggressiveness(&self) -> Aggressiveness {
        self.level
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use sim_core::AccessKind;
    use sim_mem::SimMemory;

    fn cdp() -> ContentDirectedPrefetcher {
        ContentDirectedPrefetcher::new(PrefetcherId(1), CdpConfig::default(), Box::new(AllowAll))
    }

    fn demand_fill(
        pf: &mut ContentDirectedPrefetcher,
        mem: &SimMemory,
        block: Addr,
        trigger_pc: u32,
        trigger_addr: Addr,
    ) -> Vec<PrefetchRequest> {
        let mut ctx = PrefetchCtx::new(mem, 0);
        pf.on_fill(
            &mut ctx,
            &FillEvent {
                block_addr: block,
                kind: AccessKind::DemandLoad,
                trigger_pc,
                trigger_addr,
                depth: 0,
                pg: None,
                cycle: 0,
            },
        );
        ctx.take_requests()
    }

    #[test]
    fn pointer_predictor_uses_compare_bits() {
        let pf = cdp();
        let block = 0x4000_0040;
        assert!(pf.looks_like_pointer(block, 0x4012_3456)); // same top byte
        assert!(!pf.looks_like_pointer(block, 0x0800_0000)); // global region
        assert!(!pf.looks_like_pointer(block, 0)); // null
        assert!(!pf.looks_like_pointer(block, 0x4100_0000)); // 0x41 != 0x40
    }

    #[test]
    fn demand_fill_prefetches_matching_words() {
        let mut mem = SimMemory::new();
        let block = 0x4000_0040;
        mem.write_u32(block + 8, 0x4000_1000); // pointer
        mem.write_u32(block + 12, 1234); // integer
        mem.write_u32(block + 20, 0x4000_2000); // pointer
        let mut pf = cdp();
        let reqs = demand_fill(&mut pf, &mem, block, 0x100, block);
        let addrs: Vec<Addr> = reqs.iter().map(|r| r.addr).collect();
        assert_eq!(addrs, vec![0x4000_1000, 0x4000_2000]);
        assert!(reqs.iter().all(|r| r.depth == 1));
    }

    #[test]
    fn pg_tags_are_relative_to_accessed_byte() {
        let mut mem = SimMemory::new();
        let block = 0x4000_0040;
        mem.write_u32(block + 8, 0x4000_1000);
        mem.write_u32(block, 0x4000_2000);
        let mut pf = cdp();
        // Load accessed byte 4 of the block.
        let reqs = demand_fill(&mut pf, &mem, block, 0x100, block + 4);
        let pgs: Vec<i16> = reqs.iter().map(|r| r.pg.unwrap().offset).collect();
        // Pointer at byte 0 => offset -4; pointer at byte 8 => offset +4.
        assert!(pgs.contains(&-4));
        assert!(pgs.contains(&4));
    }

    #[test]
    fn self_block_pointers_are_skipped() {
        let mut mem = SimMemory::new();
        let block = 0x4000_0040;
        mem.write_u32(block, block + 16); // points into same block
        let mut pf = cdp();
        assert!(demand_fill(&mut pf, &mem, block, 0x100, block).is_empty());
    }

    #[test]
    fn recursion_respects_max_depth() {
        let mut mem = SimMemory::new();
        let block = 0x4000_0040;
        mem.write_u32(block, 0x4000_2000);
        let mut pf = cdp();
        pf.set_aggressiveness(Aggressiveness::VeryConservative); // depth 1
        let mut ctx = PrefetchCtx::new(&mem, 0);
        pf.on_fill(
            &mut ctx,
            &FillEvent {
                block_addr: block,
                kind: AccessKind::Prefetch(PrefetcherId(1)),
                trigger_pc: 0x100,
                trigger_addr: block,
                depth: 1,
                pg: None,
                cycle: 0,
            },
        );
        assert!(
            ctx.take_requests().is_empty(),
            "depth-1 fill must not be scanned at max depth 1"
        );
        pf.set_aggressiveness(Aggressiveness::Aggressive); // depth 4
        let mut ctx = PrefetchCtx::new(&mem, 0);
        pf.on_fill(
            &mut ctx,
            &FillEvent {
                block_addr: block,
                kind: AccessKind::Prefetch(PrefetcherId(1)),
                trigger_pc: 0x100,
                trigger_addr: block,
                depth: 1,
                pg: None,
                cycle: 0,
            },
        );
        let reqs = ctx.take_requests();
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].depth, 2);
    }

    #[test]
    fn other_prefetchers_fills_are_ignored() {
        let mut mem = SimMemory::new();
        let block = 0x4000_0040;
        mem.write_u32(block, 0x4000_2000);
        let mut pf = cdp();
        let mut ctx = PrefetchCtx::new(&mem, 0);
        pf.on_fill(
            &mut ctx,
            &FillEvent {
                block_addr: block,
                kind: AccessKind::Prefetch(PrefetcherId(0)), // stream's fill
                trigger_pc: 0,
                trigger_addr: block,
                depth: 0,
                pg: None,
                cycle: 0,
            },
        );
        assert!(ctx.take_requests().is_empty());
    }

    #[test]
    fn scan_filter_blocks_pointer_groups() {
        struct OnlyOffset8;
        impl ScanFilter for OnlyOffset8 {
            fn allow(&self, _pc: u32, offset: i32) -> bool {
                offset == 8
            }
        }
        let mut mem = SimMemory::new();
        let block = 0x4000_0040;
        mem.write_u32(block + 8, 0x4000_1000); // offset 8 from byte 0
        mem.write_u32(block + 12, 0x4000_2000); // offset 12
        let mut pf = ContentDirectedPrefetcher::new(
            PrefetcherId(1),
            CdpConfig::default(),
            Box::new(OnlyOffset8),
        );
        let reqs = demand_fill(&mut pf, &mem, block, 0x100, block);
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].addr, 0x4000_1000);
    }

    #[test]
    fn recursive_scan_is_unfiltered() {
        struct DenyAll;
        impl ScanFilter for DenyAll {
            fn allow(&self, _pc: u32, _offset: i32) -> bool {
                false
            }
        }
        let mut mem = SimMemory::new();
        let block = 0x4000_0040;
        mem.write_u32(block, 0x4000_2000);
        let mut pf = ContentDirectedPrefetcher::new(
            PrefetcherId(1),
            CdpConfig::default(),
            Box::new(DenyAll),
        );
        // Demand fill: filtered away.
        assert!(demand_fill(&mut pf, &mem, block, 0x100, block).is_empty());
        // Prefetch fill: scanned regardless (paper §3).
        let mut ctx = PrefetchCtx::new(&mem, 0);
        pf.on_fill(
            &mut ctx,
            &FillEvent {
                block_addr: block,
                kind: AccessKind::Prefetch(PrefetcherId(1)),
                trigger_pc: 0x100,
                trigger_addr: block,
                depth: 1,
                pg: Some(PgTag {
                    pc: 0x100,
                    offset: 0,
                }),
                cycle: 0,
            },
        );
        let reqs = ctx.take_requests();
        assert_eq!(reqs.len(), 1);
        // Root PG attribution is inherited through the recursion.
        assert_eq!(
            reqs[0].pg,
            Some(PgTag {
                pc: 0x100,
                offset: 0
            })
        );
    }
}
