//! Markov (address-correlation) prefetching — Joseph & Grunwald, ISCA 1997.
//!
//! A correlation table maps a miss block address to the block addresses that
//! followed it in the miss stream. On a demand miss, the predicted
//! successors of the missing block are prefetched. The paper's comparison
//! configuration (§6.3) uses a 1 MB table with 4 successor addresses per
//! entry; being correlation-based, it can only prefetch addresses it has
//! *already observed* — one of the structural disadvantages relative to
//! ECDP called out in the paper.

use sim_core::{
    Aggressiveness, DemandAccess, PrefetchCtx, PrefetchRequest, Prefetcher, PrefetcherId,
    PrefetcherKind, SnapReader, SnapWriter, SnapshotError,
};
use sim_mem::{block_of, Addr};

/// Markov prefetcher parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MarkovConfig {
    /// Number of correlation-table entries (direct mapped on block address).
    pub entries: usize,
    /// Successor addresses stored per entry.
    pub ways: usize,
}

impl MarkovConfig {
    /// The paper's 1 MB configuration: each entry holds a 4-byte tag and
    /// four 4-byte successors (20 B); 1 MB / 20 B ≈ 52k entries, rounded to
    /// the nearest power of two.
    pub fn paper_1mb() -> Self {
        MarkovConfig {
            entries: 65536,
            ways: 4,
        }
    }

    /// Approximate storage cost in bytes (tag + successors per entry).
    pub fn storage_bytes(&self) -> usize {
        self.entries * (4 + 4 * self.ways)
    }
}

impl Default for MarkovConfig {
    fn default() -> Self {
        Self::paper_1mb()
    }
}

#[derive(Debug, Clone)]
struct Entry {
    tag: Addr,
    /// Successors, most recent first.
    successors: Vec<Addr>,
}

/// The Markov correlation prefetcher. See the module docs.
#[derive(Debug)]
pub struct MarkovPrefetcher {
    id: PrefetcherId,
    config: MarkovConfig,
    level: Aggressiveness,
    table: Vec<Option<Entry>>,
    last_miss: Option<Addr>,
}

/// Successors prefetched per miss for the four aggressiveness levels.
const DEGREE_LEVELS: [usize; 4] = [1, 2, 3, 4];

impl MarkovPrefetcher {
    /// Creates a Markov prefetcher registered as `id`.
    pub fn new(id: PrefetcherId, config: MarkovConfig) -> Self {
        MarkovPrefetcher {
            id,
            config,
            level: Aggressiveness::Aggressive,
            table: vec![None; config.entries],
            last_miss: None,
        }
    }

    fn slot(&self, block: Addr) -> usize {
        ((block / sim_mem::BLOCK_BYTES) as usize) % self.config.entries
    }

    fn record(&mut self, from: Addr, to: Addr) {
        let ways = self.config.ways;
        let slot = self.slot(from);
        match &mut self.table[slot] {
            Some(e) if e.tag == from => {
                e.successors.retain(|&s| s != to);
                e.successors.insert(0, to);
                e.successors.truncate(ways);
            }
            _ => {
                self.table[slot] = Some(Entry {
                    tag: from,
                    successors: vec![to],
                });
            }
        }
    }

    fn predict(&self, block: Addr) -> &[Addr] {
        let slot = self.slot(block);
        match &self.table[slot] {
            Some(e) if e.tag == block => &e.successors,
            _ => &[],
        }
    }
}

impl Prefetcher for MarkovPrefetcher {
    fn name(&self) -> &'static str {
        "markov"
    }

    fn kind(&self) -> PrefetcherKind {
        PrefetcherKind::Correlation
    }

    fn on_demand_access(&mut self, ctx: &mut PrefetchCtx<'_>, ev: &DemandAccess) {
        if ev.hit {
            return;
        }
        let block = block_of(ev.addr);
        if let Some(prev) = self.last_miss {
            if prev != block {
                self.record(prev, block);
            }
        }
        self.last_miss = Some(block);
        let degree = DEGREE_LEVELS[self.level.index()];
        let preds: Vec<Addr> = self.predict(block).iter().take(degree).copied().collect();
        for addr in preds {
            ctx.request(PrefetchRequest {
                addr,
                id: self.id,
                depth: 0,
                pg: None,
                root_pc: ev.pc,
            });
        }
    }

    fn set_aggressiveness(&mut self, level: Aggressiveness) {
        self.level = level;
    }

    fn aggressiveness(&self) -> Aggressiveness {
        self.level
    }

    fn save_state(&self, w: &mut SnapWriter) {
        match self.last_miss {
            None => w.bool(false),
            Some(a) => {
                w.bool(true);
                w.u32(a);
            }
        }
        // The table is direct mapped and mostly empty: store filled slots.
        let filled = self.table.iter().filter(|e| e.is_some()).count();
        w.u64(filled as u64);
        for (slot, e) in self.table.iter().enumerate() {
            let Some(e) = e else { continue };
            w.u32(slot as u32);
            w.u32(e.tag);
            w.u32(e.successors.len() as u32);
            for &s in &e.successors {
                w.u32(s);
            }
        }
    }

    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        self.last_miss = if r.bool()? { Some(r.u32()?) } else { None };
        for e in &mut self.table {
            *e = None;
        }
        let n = r.len_prefix()?;
        for _ in 0..n {
            let slot = r.u32()? as usize;
            if slot >= self.table.len() {
                return Err(SnapshotError::Malformed(format!(
                    "markov slot {slot} out of range"
                )));
            }
            let tag = r.u32()?;
            let ways = r.u32()? as usize;
            if ways > self.config.ways {
                return Err(SnapshotError::Malformed(format!(
                    "markov entry holds {ways} successors, table ways {}",
                    self.config.ways
                )));
            }
            let mut successors = Vec::with_capacity(ways);
            for _ in 0..ways {
                successors.push(r.u32()?);
            }
            self.table[slot] = Some(Entry { tag, successors });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_mem::SimMemory;

    fn miss(pf: &mut MarkovPrefetcher, mem: &SimMemory, addr: Addr) -> Vec<Addr> {
        let mut ctx = PrefetchCtx::new(mem, 0);
        pf.on_demand_access(
            &mut ctx,
            &DemandAccess {
                pc: 1,
                addr,
                value: 0,
                hit: false,
                is_store: false,
                cycle: 0,
            },
        );
        ctx.take_requests().iter().map(|r| r.addr).collect()
    }

    #[test]
    fn repeated_sequence_is_predicted() {
        let mem = SimMemory::new();
        let mut pf = MarkovPrefetcher::new(PrefetcherId(0), MarkovConfig::default());
        let a = 0x4000_0000;
        let b = 0x4000_4000;
        let c = 0x4000_8000;
        // First pass trains: a -> b -> c.
        assert!(miss(&mut pf, &mem, a).is_empty());
        assert!(miss(&mut pf, &mem, b).is_empty());
        assert!(miss(&mut pf, &mem, c).is_empty());
        // Second pass predicts.
        let p = miss(&mut pf, &mem, a);
        assert_eq!(p, vec![b]);
        let p = miss(&mut pf, &mem, b);
        assert_eq!(p, vec![c]);
    }

    #[test]
    fn unseen_addresses_have_no_prediction() {
        let mem = SimMemory::new();
        let mut pf = MarkovPrefetcher::new(PrefetcherId(0), MarkovConfig::default());
        assert!(miss(&mut pf, &mem, 0x4000_0000).is_empty());
        assert!(miss(&mut pf, &mem, 0x4F00_0000).is_empty());
    }

    #[test]
    fn multiple_successors_mru_ordered() {
        let mem = SimMemory::new();
        let mut pf = MarkovPrefetcher::new(PrefetcherId(0), MarkovConfig::default());
        let a = 0x4000_0000;
        let b = 0x4000_4000;
        let c = 0x4000_8000;
        // a -> b, then a -> c (more recent).
        miss(&mut pf, &mem, a);
        miss(&mut pf, &mem, b);
        miss(&mut pf, &mem, a);
        miss(&mut pf, &mem, c);
        let p = miss(&mut pf, &mem, a);
        assert_eq!(p[0], c, "most recent successor first");
        assert!(p.contains(&b));
    }

    #[test]
    fn aggressiveness_limits_degree() {
        let mem = SimMemory::new();
        let mut pf = MarkovPrefetcher::new(PrefetcherId(0), MarkovConfig::default());
        let a = 0x4000_0000;
        for i in 1..=4u32 {
            miss(&mut pf, &mem, a);
            miss(&mut pf, &mem, a + i * 0x1000);
        }
        pf.set_aggressiveness(Aggressiveness::VeryConservative);
        assert_eq!(miss(&mut pf, &mem, a).len(), 1);
        pf.set_aggressiveness(Aggressiveness::Aggressive);
        assert_eq!(miss(&mut pf, &mem, a).len(), 4);
    }

    #[test]
    fn hits_do_not_train() {
        let mem = SimMemory::new();
        let mut pf = MarkovPrefetcher::new(PrefetcherId(0), MarkovConfig::default());
        let mut ctx = PrefetchCtx::new(&mem, 0);
        pf.on_demand_access(
            &mut ctx,
            &DemandAccess {
                pc: 1,
                addr: 0x4000_0000,
                value: 0,
                hit: true,
                is_store: false,
                cycle: 0,
            },
        );
        assert!(ctx.take_requests().is_empty());
        assert!(pf.last_miss.is_none());
    }

    #[test]
    fn paper_config_is_about_1mb() {
        let c = MarkovConfig::paper_1mb();
        let mb = c.storage_bytes() as f64 / (1024.0 * 1024.0);
        assert!((1.0..=1.5).contains(&mb), "storage {mb} MB");
    }
}
