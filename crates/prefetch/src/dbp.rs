//! Dependence-based prefetching (DBP) — Roth, Moshovos & Sohi, ASPLOS 1998.
//!
//! DBP learns *producer → consumer* relations between static loads: a load
//! that produces a pointer value and a later load whose address equals that
//! value (plus a small field offset). The hardware keeps a
//! **potential-producer window** (PPW) of recently loaded values and a
//! **correlation table** (CT) mapping a producer PC to the consumer's
//! (PC, offset). At run time, when a correlated producer loads a value, the
//! consumer's future address is prefetched.
//!
//! The paper's §6.3 configuration: 256-entry CT + 128-entry PPW ≈ 3 KB.
//! DBP's structural weakness — it runs only one dependence step ahead of
//! the program — is visible in the reproduction exactly as in the paper.

use sim_core::{
    Aggressiveness, DemandAccess, PrefetchCtx, PrefetchRequest, Prefetcher, PrefetcherId,
    PrefetcherKind, SnapReader, SnapWriter, SnapshotError,
};
use sim_mem::layout;

/// DBP parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DbpConfig {
    /// Potential-producer window entries (paper: 128).
    pub ppw_entries: usize,
    /// Correlation-table entries (paper: 256).
    pub ct_entries: usize,
    /// Maximum |offset| between produced value and consumed address for a
    /// correlation to be recorded, in bytes.
    pub max_offset: u32,
}

impl Default for DbpConfig {
    fn default() -> Self {
        DbpConfig {
            ppw_entries: 128,
            ct_entries: 256,
            max_offset: 64,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct PpwEntry {
    value: u32,
    pc: u32,
}

#[derive(Debug, Clone, Copy)]
struct CtEntry {
    producer_pc: u32,
    offset: i32,
    lru: u64,
}

/// Consumers prefetched per producer for the four aggressiveness levels.
const FANOUT_LEVELS: [usize; 4] = [1, 1, 2, 4];

/// The dependence-based LDS prefetcher. See the module docs.
#[derive(Debug)]
pub struct DependenceBasedPrefetcher {
    id: PrefetcherId,
    config: DbpConfig,
    level: Aggressiveness,
    ppw: Vec<PpwEntry>,
    ct: Vec<CtEntry>,
    tick: u64,
}

impl DependenceBasedPrefetcher {
    /// Creates a DBP registered as `id`.
    pub fn new(id: PrefetcherId, config: DbpConfig) -> Self {
        DependenceBasedPrefetcher {
            id,
            config,
            level: Aggressiveness::Aggressive,
            ppw: Vec::new(),
            ct: Vec::new(),
            tick: 0,
        }
    }

    /// Approximate storage in bytes (PPW: value+pc; CT: pcs+offset).
    pub fn storage_bytes(&self) -> usize {
        self.config.ppw_entries * 8 + self.config.ct_entries * 12
    }

    fn record_correlation(&mut self, producer_pc: u32, offset: i32) {
        if let Some(e) = self
            .ct
            .iter_mut()
            .find(|e| e.producer_pc == producer_pc && e.offset == offset)
        {
            e.lru = self.tick;
            return;
        }
        if self.ct.len() >= self.config.ct_entries {
            if let Some(victim) = self
                .ct
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.lru)
                .map(|(i, _)| i)
            {
                self.ct.swap_remove(victim);
            }
        }
        self.ct.push(CtEntry {
            producer_pc,
            offset,
            lru: self.tick,
        });
    }
}

impl Prefetcher for DependenceBasedPrefetcher {
    fn name(&self) -> &'static str {
        "dbp"
    }

    fn kind(&self) -> PrefetcherKind {
        PrefetcherKind::Dependence
    }

    fn on_demand_access(&mut self, ctx: &mut PrefetchCtx<'_>, ev: &DemandAccess) {
        if ev.is_store {
            return;
        }
        self.tick += 1;

        // Consumer detection: does this load's address match a recently
        // produced value (within max_offset)?
        let addr = i64::from(ev.addr);
        let max_off = i64::from(self.config.max_offset);
        let mut found: Option<(u32, i32)> = None;
        for p in self.ppw.iter().rev() {
            let off = addr - i64::from(p.value);
            if off.abs() <= max_off && p.pc != ev.pc {
                found = Some((p.pc, off as i32));
                break;
            }
        }
        if let Some((producer_pc, offset)) = found {
            self.record_correlation(producer_pc, offset);
        }

        // Producer side: if this load produced a pointer-looking value,
        // remember it and fire any known consumers.
        if layout::in_heap(ev.value) {
            self.ppw.push(PpwEntry {
                value: ev.value,
                pc: ev.pc,
            });
            if self.ppw.len() > self.config.ppw_entries {
                self.ppw.remove(0);
            }

            let fanout = FANOUT_LEVELS[self.level.index()];
            let targets: Vec<i64> = self
                .ct
                .iter()
                .filter(|e| e.producer_pc == ev.pc)
                .take(fanout)
                .map(|e| i64::from(ev.value) + i64::from(e.offset))
                .collect();
            for t in targets {
                if t <= 0 || t > i64::from(u32::MAX) {
                    continue;
                }
                ctx.request(PrefetchRequest {
                    addr: t as u32,
                    id: self.id,
                    depth: 0,
                    pg: None,
                    root_pc: ev.pc,
                });
            }
        }
    }

    fn set_aggressiveness(&mut self, level: Aggressiveness) {
        self.level = level;
    }

    fn aggressiveness(&self) -> Aggressiveness {
        self.level
    }

    fn save_state(&self, w: &mut SnapWriter) {
        w.u64(self.tick);
        // Both tables are position-sensitive (PPW scan order, CT
        // swap_remove eviction): store them in order.
        w.u32(self.ppw.len() as u32);
        for p in &self.ppw {
            w.u32(p.value);
            w.u32(p.pc);
        }
        w.u32(self.ct.len() as u32);
        for e in &self.ct {
            w.u32(e.producer_pc);
            w.i32(e.offset);
            w.u64(e.lru);
        }
    }

    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        self.tick = r.u64()?;
        let n = r.u32()? as usize;
        if n > self.config.ppw_entries {
            return Err(SnapshotError::Malformed(format!(
                "snapshot has {n} PPW entries, window holds {}",
                self.config.ppw_entries
            )));
        }
        self.ppw.clear();
        for _ in 0..n {
            self.ppw.push(PpwEntry {
                value: r.u32()?,
                pc: r.u32()?,
            });
        }
        let n = r.u32()? as usize;
        if n > self.config.ct_entries {
            return Err(SnapshotError::Malformed(format!(
                "snapshot has {n} CT entries, table holds {}",
                self.config.ct_entries
            )));
        }
        self.ct.clear();
        for _ in 0..n {
            self.ct.push(CtEntry {
                producer_pc: r.u32()?,
                offset: r.i32()?,
                lru: r.u64()?,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::Addr;
    use sim_mem::SimMemory;

    fn load(
        pf: &mut DependenceBasedPrefetcher,
        mem: &SimMemory,
        pc: u32,
        addr: Addr,
        value: u32,
    ) -> Vec<Addr> {
        let mut ctx = PrefetchCtx::new(mem, 0);
        pf.on_demand_access(
            &mut ctx,
            &DemandAccess {
                pc,
                addr,
                value,
                hit: false,
                is_store: false,
                cycle: 0,
            },
        );
        ctx.take_requests().iter().map(|r| r.addr).collect()
    }

    const PRODUCER: u32 = 0x100;
    const CONSUMER: u32 = 0x200;

    #[test]
    fn learns_producer_consumer_and_prefetches() {
        let mem = SimMemory::new();
        let mut pf = DependenceBasedPrefetcher::new(PrefetcherId(0), DbpConfig::default());
        let n1 = layout::HEAP_BASE + 0x100;
        let n2 = layout::HEAP_BASE + 0x900;
        // Producer loads pointer n1; consumer dereferences n1+8.
        assert!(load(&mut pf, &mem, PRODUCER, layout::HEAP_BASE, n1).is_empty());
        assert!(load(&mut pf, &mem, CONSUMER, n1 + 8, n2).is_empty());
        // Next time the producer fires, the consumer address is prefetched.
        let n3 = layout::HEAP_BASE + 0x2000;
        let reqs = load(&mut pf, &mem, PRODUCER, layout::HEAP_BASE + 4, n3);
        assert_eq!(reqs, vec![n3 + 8]);
    }

    #[test]
    fn non_pointer_values_produce_nothing() {
        let mem = SimMemory::new();
        let mut pf = DependenceBasedPrefetcher::new(PrefetcherId(0), DbpConfig::default());
        // Value 42 is not a heap address: no PPW entry, no prefetch.
        assert!(load(&mut pf, &mem, PRODUCER, layout::HEAP_BASE, 42).is_empty());
        assert!(pf.ppw.is_empty());
    }

    #[test]
    fn correlation_requires_offset_within_bound() {
        let mem = SimMemory::new();
        let mut pf = DependenceBasedPrefetcher::new(PrefetcherId(0), DbpConfig::default());
        let n1 = layout::HEAP_BASE + 0x100;
        load(&mut pf, &mem, PRODUCER, layout::HEAP_BASE, n1);
        // Consumer accesses far from the produced value: no correlation.
        load(&mut pf, &mem, CONSUMER, n1 + 0x4000, layout::HEAP_BASE);
        assert!(pf.ct.is_empty());
    }

    #[test]
    fn ppw_is_bounded() {
        let mem = SimMemory::new();
        let mut pf = DependenceBasedPrefetcher::new(
            PrefetcherId(0),
            DbpConfig {
                ppw_entries: 4,
                ..Default::default()
            },
        );
        for i in 0..10u32 {
            load(
                &mut pf,
                &mem,
                PRODUCER,
                layout::HEAP_BASE + i * 4,
                layout::HEAP_BASE + 0x1000 + i,
            );
        }
        assert_eq!(pf.ppw.len(), 4);
    }

    #[test]
    fn ct_evicts_lru() {
        let mem = SimMemory::new();
        let mut pf = DependenceBasedPrefetcher::new(
            PrefetcherId(0),
            DbpConfig {
                ct_entries: 2,
                ..Default::default()
            },
        );
        // Create three distinct correlations.
        for k in 0..3u32 {
            let ptr = layout::HEAP_BASE + 0x1000 * (k + 1);
            load(&mut pf, &mem, 0x100 + k, layout::HEAP_BASE + k * 4, ptr);
            load(&mut pf, &mem, 0x900 + k, ptr + 8, 1);
        }
        assert_eq!(pf.ct.len(), 2);
    }

    #[test]
    fn storage_is_about_3kb() {
        let pf = DependenceBasedPrefetcher::new(PrefetcherId(0), DbpConfig::default());
        let kb = pf.storage_bytes() as f64 / 1024.0;
        assert!((2.0..=4.0).contains(&kb), "storage {kb} KB");
    }
}
