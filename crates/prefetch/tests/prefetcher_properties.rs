//! Property-based tests over the prefetcher implementations.

use proptest::prelude::*;

use prefetch::{
    GhbConfig, GhbPrefetcher, JumpPointerConfig, JumpPointerPrefetcher, MarkovConfig,
    MarkovPrefetcher, StreamConfig, StreamPrefetcher, StrideConfig, StridePrefetcher,
};
use sim_core::{Addr, DemandAccess, PrefetchCtx, Prefetcher, PrefetcherId};
use sim_mem::SimMemory;

fn drive(pf: &mut dyn Prefetcher, addrs: &[Addr]) -> Vec<Addr> {
    let mem = SimMemory::new();
    let mut out = Vec::new();
    for (i, &addr) in addrs.iter().enumerate() {
        let mut ctx = PrefetchCtx::new(&mem, i as u64);
        pf.on_demand_access(
            &mut ctx,
            &DemandAccess {
                pc: 0x10,
                addr,
                value: 0,
                hit: false,
                is_store: false,
                cycle: i as u64,
            },
        );
        out.extend(ctx.take_requests().iter().map(|r| r.addr));
    }
    out
}

proptest! {
    /// The stream prefetcher never emits a request more than
    /// `distance + degree` blocks from the most recent demand.
    #[test]
    fn stream_requests_stay_near_the_demand(
        blocks in proptest::collection::vec(0u32..10_000, 1..200)
    ) {
        let mut pf = StreamPrefetcher::new(PrefetcherId(0), StreamConfig::default());
        let mem = SimMemory::new();
        for (i, &b) in blocks.iter().enumerate() {
            let addr = 0x4000_0000 + b * 64;
            let mut ctx = PrefetchCtx::new(&mem, i as u64);
            pf.on_demand_access(&mut ctx, &DemandAccess {
                pc: 0x10, addr, value: 0, hit: false, is_store: false, cycle: i as u64,
            });
            for r in ctx.take_requests() {
                let demand_block = i64::from(addr / 64);
                let req_block = i64::from(r.addr / 64);
                prop_assert!(
                    (req_block - demand_block).abs() <= 36,
                    "request {} blocks away", (req_block - demand_block).abs()
                );
            }
        }
    }

    /// Markov only ever predicts block addresses it has previously observed
    /// as misses.
    #[test]
    fn markov_predicts_only_observed_blocks(
        blocks in proptest::collection::vec(0u32..64, 1..300)
    ) {
        let mut pf = MarkovPrefetcher::new(PrefetcherId(0), MarkovConfig::default());
        let mem = SimMemory::new();
        let mut seen = std::collections::HashSet::new();
        for (i, &b) in blocks.iter().enumerate() {
            let addr = 0x4000_0000 + b * 64;
            let mut ctx = PrefetchCtx::new(&mem, i as u64);
            pf.on_demand_access(&mut ctx, &DemandAccess {
                pc: 0x10, addr, value: 0, hit: false, is_store: false, cycle: i as u64,
            });
            for r in ctx.take_requests() {
                prop_assert!(seen.contains(&sim_mem::block_of(r.addr)),
                    "predicted unobserved block {:#x}", r.addr);
            }
            seen.insert(sim_mem::block_of(addr));
        }
    }

    /// The stride prefetcher's requests are always exact multiples of the
    /// learned stride ahead of the base address.
    #[test]
    fn stride_requests_are_stride_multiples(stride in 1u32..5000, start in 0u32..1000) {
        let mut pf = StridePrefetcher::new(PrefetcherId(0), StrideConfig::default());
        let base = 0x4000_0000 + start * 4;
        let addrs: Vec<Addr> = (0..12).map(|i| base + i * stride).collect();
        let reqs = drive(&mut pf, &addrs);
        for r in &reqs {
            prop_assert_eq!(
                (i64::from(*r) - i64::from(base)).rem_euclid(i64::from(stride)),
                0,
                "request {:#x} off-stride", r
            );
        }
        prop_assert!(!reqs.is_empty(), "a perfect stride must eventually fire");
    }

    /// GHB never panics and never emits address zero on arbitrary miss
    /// streams.
    #[test]
    fn ghb_is_robust_to_arbitrary_misses(
        blocks in proptest::collection::vec(0u32..100_000, 1..300)
    ) {
        let mut pf = GhbPrefetcher::new(PrefetcherId(0), GhbConfig::default());
        let addrs: Vec<Addr> = blocks.iter().map(|b| 0x4000_0000u32.wrapping_add(b * 64)).collect();
        let reqs = drive(&mut pf, &addrs);
        for r in reqs {
            prop_assert!(r != 0);
        }
    }

    /// GHB storage stays bounded on arbitrary miss streams: the history
    /// window is compacted to O(buffer_entries) and the index table never
    /// exceeds its configured capacity, no matter how long the run.
    #[test]
    fn ghb_storage_stays_bounded(
        blocks in proptest::collection::vec(0u32..200_000, 1..600)
    ) {
        let cfg = GhbConfig { buffer_entries: 32, index_entries: 16 };
        let mut pf = GhbPrefetcher::new(PrefetcherId(0), cfg);
        let mem = SimMemory::new();
        for (i, &b) in blocks.iter().enumerate() {
            let addr = 0x4000_0000 + (b % 200_000) * 64;
            let mut ctx = PrefetchCtx::new(&mem, i as u64);
            pf.on_demand_access(&mut ctx, &DemandAccess {
                pc: 0x10, addr, value: 0, hit: false, is_store: false, cycle: i as u64,
            });
            let _ = ctx.take_requests();
            prop_assert!(
                pf.history_len() <= 4 * cfg.buffer_entries,
                "history grew to {} entries", pf.history_len()
            );
            prop_assert!(
                pf.index_len() <= cfg.index_entries,
                "index grew to {} entries", pf.index_len()
            );
        }
    }

    /// On strided miss streams GHB only ever prefetches *ahead*: it never
    /// re-requests the block that triggered it.
    #[test]
    fn ghb_strided_streams_never_self_prefetch(
        stride in 1u32..512, len in 4usize..100
    ) {
        let mut pf = GhbPrefetcher::new(PrefetcherId(0), GhbConfig::default());
        let mem = SimMemory::new();
        for i in 0..len {
            let addr = 0x4000_0000 + (i as u32) * stride * 64;
            let mut ctx = PrefetchCtx::new(&mem, i as u64);
            pf.on_demand_access(&mut ctx, &DemandAccess {
                pc: 0x10, addr, value: 0, hit: false, is_store: false, cycle: i as u64,
            });
            for r in ctx.take_requests() {
                prop_assert!(
                    sim_mem::block_of(r.addr) != sim_mem::block_of(addr),
                    "self-prefetch of {:#x}", addr
                );
            }
        }
    }

    /// Markov's per-miss fan-out is bounded by the configured successor
    /// ways, and it never predicts the block that triggered it (recording
    /// skips prev == current, so an entry never lists itself).
    #[test]
    fn markov_fanout_bounded_and_no_self_prefetch(
        blocks in proptest::collection::vec(0u32..64, 1..300)
    ) {
        let cfg = MarkovConfig::default();
        let mut pf = MarkovPrefetcher::new(PrefetcherId(0), cfg);
        let mem = SimMemory::new();
        for (i, &b) in blocks.iter().enumerate() {
            let addr = 0x4000_0000 + b * 64;
            let mut ctx = PrefetchCtx::new(&mem, i as u64);
            pf.on_demand_access(&mut ctx, &DemandAccess {
                pc: 0x10, addr, value: 0, hit: false, is_store: false, cycle: i as u64,
            });
            let reqs = ctx.take_requests();
            prop_assert!(reqs.len() <= cfg.ways, "{} successors fired", reqs.len());
            for r in reqs {
                prop_assert!(
                    sim_mem::block_of(r.addr) != sim_mem::block_of(addr),
                    "self-prefetch of {:#x}", addr
                );
            }
        }
    }

    /// The jump-pointer traversal window never grows past `interval`
    /// entries, and the stored jump target fired on a revisit is never
    /// the triggering block itself.
    #[test]
    fn jump_pointer_window_bounded_and_no_self_target(
        blocks in proptest::collection::vec(0u32..4096, 1..400)
    ) {
        let cfg = JumpPointerConfig::default();
        let mut pf = JumpPointerPrefetcher::new(PrefetcherId(0), cfg);
        let mem = SimMemory::new();
        for (i, &b) in blocks.iter().enumerate() {
            let addr = 0x4000_0000 + b * 64;
            let mut ctx = PrefetchCtx::new(&mem, i as u64);
            pf.on_demand_access(&mut ctx, &DemandAccess {
                pc: 0x10, addr, value: 0x4000_0040, hit: false, is_store: false, cycle: i as u64,
            });
            prop_assert!(
                pf.history_len() <= cfg.interval,
                "window grew to {} entries", pf.history_len()
            );
            if let Some(first) = ctx.take_requests().first() {
                prop_assert!(
                    sim_mem::block_of(first.addr) != sim_mem::block_of(addr),
                    "jump target is the trigger {:#x}", addr
                );
            }
        }
    }

    /// Replaying the identical miss stream on a fresh instance yields the
    /// identical request sequence — no hidden state escapes a run.
    #[test]
    fn prefetchers_are_deterministic(
        blocks in proptest::collection::vec(0u32..100_000, 1..300)
    ) {
        let addrs: Vec<Addr> = blocks.iter().map(|b| 0x4000_0000 + b * 64).collect();
        let replay = |a: &mut dyn Prefetcher, b: &mut dyn Prefetcher| {
            (drive(a, &addrs), drive(b, &addrs))
        };
        let id = PrefetcherId(0);
        let (a, b) = replay(
            &mut GhbPrefetcher::new(id, GhbConfig::default()),
            &mut GhbPrefetcher::new(id, GhbConfig::default()),
        );
        prop_assert_eq!(a, b, "ghb diverged between identical runs");
        let (a, b) = replay(
            &mut MarkovPrefetcher::new(id, MarkovConfig::default()),
            &mut MarkovPrefetcher::new(id, MarkovConfig::default()),
        );
        prop_assert_eq!(a, b, "markov diverged between identical runs");
        let (a, b) = replay(
            &mut StreamPrefetcher::new(id, StreamConfig::default()),
            &mut StreamPrefetcher::new(id, StreamConfig::default()),
        );
        prop_assert_eq!(a, b, "stream diverged between identical runs");
        let (a, b) = replay(
            &mut JumpPointerPrefetcher::new(id, JumpPointerConfig::default()),
            &mut JumpPointerPrefetcher::new(id, JumpPointerConfig::default()),
        );
        prop_assert_eq!(a, b, "jump-pointer diverged between identical runs");
    }
}
