//! Property-based tests over the prefetcher implementations.

use proptest::prelude::*;

use prefetch::{
    GhbConfig, GhbPrefetcher, MarkovConfig, MarkovPrefetcher, StreamConfig, StreamPrefetcher,
    StrideConfig, StridePrefetcher,
};
use sim_core::{Addr, DemandAccess, PrefetchCtx, Prefetcher, PrefetcherId};
use sim_mem::SimMemory;

fn drive(pf: &mut dyn Prefetcher, addrs: &[Addr]) -> Vec<Addr> {
    let mem = SimMemory::new();
    let mut out = Vec::new();
    for (i, &addr) in addrs.iter().enumerate() {
        let mut ctx = PrefetchCtx::new(&mem, i as u64);
        pf.on_demand_access(
            &mut ctx,
            &DemandAccess {
                pc: 0x10,
                addr,
                value: 0,
                hit: false,
                is_store: false,
                cycle: i as u64,
            },
        );
        out.extend(ctx.take_requests().iter().map(|r| r.addr));
    }
    out
}

proptest! {
    /// The stream prefetcher never emits a request more than
    /// `distance + degree` blocks from the most recent demand.
    #[test]
    fn stream_requests_stay_near_the_demand(
        blocks in proptest::collection::vec(0u32..10_000, 1..200)
    ) {
        let mut pf = StreamPrefetcher::new(PrefetcherId(0), StreamConfig::default());
        let mem = SimMemory::new();
        for (i, &b) in blocks.iter().enumerate() {
            let addr = 0x4000_0000 + b * 64;
            let mut ctx = PrefetchCtx::new(&mem, i as u64);
            pf.on_demand_access(&mut ctx, &DemandAccess {
                pc: 0x10, addr, value: 0, hit: false, is_store: false, cycle: i as u64,
            });
            for r in ctx.take_requests() {
                let demand_block = i64::from(addr / 64);
                let req_block = i64::from(r.addr / 64);
                prop_assert!(
                    (req_block - demand_block).abs() <= 36,
                    "request {} blocks away", (req_block - demand_block).abs()
                );
            }
        }
    }

    /// Markov only ever predicts block addresses it has previously observed
    /// as misses.
    #[test]
    fn markov_predicts_only_observed_blocks(
        blocks in proptest::collection::vec(0u32..64, 1..300)
    ) {
        let mut pf = MarkovPrefetcher::new(PrefetcherId(0), MarkovConfig::default());
        let mem = SimMemory::new();
        let mut seen = std::collections::HashSet::new();
        for (i, &b) in blocks.iter().enumerate() {
            let addr = 0x4000_0000 + b * 64;
            let mut ctx = PrefetchCtx::new(&mem, i as u64);
            pf.on_demand_access(&mut ctx, &DemandAccess {
                pc: 0x10, addr, value: 0, hit: false, is_store: false, cycle: i as u64,
            });
            for r in ctx.take_requests() {
                prop_assert!(seen.contains(&sim_mem::block_of(r.addr)),
                    "predicted unobserved block {:#x}", r.addr);
            }
            seen.insert(sim_mem::block_of(addr));
        }
    }

    /// The stride prefetcher's requests are always exact multiples of the
    /// learned stride ahead of the base address.
    #[test]
    fn stride_requests_are_stride_multiples(stride in 1u32..5000, start in 0u32..1000) {
        let mut pf = StridePrefetcher::new(PrefetcherId(0), StrideConfig::default());
        let base = 0x4000_0000 + start * 4;
        let addrs: Vec<Addr> = (0..12).map(|i| base + i * stride).collect();
        let reqs = drive(&mut pf, &addrs);
        for r in &reqs {
            prop_assert_eq!(
                (i64::from(*r) - i64::from(base)).rem_euclid(i64::from(stride)),
                0,
                "request {:#x} off-stride", r
            );
        }
        prop_assert!(!reqs.is_empty(), "a perfect stride must eventually fire");
    }

    /// GHB never panics and never emits address zero on arbitrary miss
    /// streams.
    #[test]
    fn ghb_is_robust_to_arbitrary_misses(
        blocks in proptest::collection::vec(0u32..100_000, 1..300)
    ) {
        let mut pf = GhbPrefetcher::new(PrefetcherId(0), GhbConfig::default());
        let addrs: Vec<Addr> = blocks.iter().map(|b| 0x4000_0000u32.wrapping_add(b * 64)).collect();
        let reqs = drive(&mut pf, &addrs);
        for r in reqs {
            prop_assert!(r != 0);
        }
    }
}
