//! Multi-core integration tests: private caches, shared DRAM, weighted
//! speedup, and the proposal's behaviour under contention.

#![allow(clippy::unwrap_used)]

use ecdp::profile::profile_workload;
use ecdp::system::{core_setup, CompilerArtifacts, SystemBuilder, SystemKind};
use sim_core::{MachineConfig, MultiMachine, Trace};
use workloads::{registry, InputSet};

/// Thin shim over [`SystemBuilder`] keeping the older call shape used
/// throughout these tests.
fn run_system(
    kind: SystemKind,
    trace: &Trace,
    artifacts: &CompilerArtifacts,
) -> Result<sim_core::RunStats, sim_core::SimError> {
    SystemBuilder::new(kind)
        .artifacts(artifacts)
        .run(trace)
        .map(|run| run.stats)
}

fn train_trace(name: &str) -> Trace {
    registry::lookup(name).unwrap().generate(InputSet::Train)
}

fn artifacts(trace: &Trace) -> CompilerArtifacts {
    CompilerArtifacts::from_profile(&profile_workload(trace))
}

fn clone_trace(t: &Trace) -> Trace {
    Trace {
        initial_memory: t.initial_memory.clone(),
        ops: t.ops.clone(),
        instructions: t.instructions,
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "slow in debug builds")]
fn sharing_the_bus_slows_both_cores() {
    let t0 = train_trace("mst");
    let t1 = train_trace("omnetpp");
    let a0 = artifacts(&t0);
    let a1 = artifacts(&t1);
    let alone0 = run_system(SystemKind::StreamOnly, &t0, &a0)
        .expect("run")
        .ipc();
    let alone1 = run_system(SystemKind::StreamOnly, &t1, &a1)
        .expect("run")
        .ipc();

    let mut mm = MultiMachine::new(
        MachineConfig::default(),
        vec![
            core_setup(SystemKind::StreamOnly, &a0),
            core_setup(SystemKind::StreamOnly, &a1),
        ],
    );
    let shared = mm.run(&[clone_trace(&t0), clone_trace(&t1)]).expect("run");
    assert!(shared.per_core[0].ipc() <= alone0 * 1.01);
    assert!(shared.per_core[1].ipc() <= alone1 * 1.01);
    let ws = shared.weighted_speedup(&[alone0, alone1]);
    assert!(
        ws > 0.5 && ws <= 2.02,
        "weighted speedup out of range: {ws}"
    );
}

#[test]
#[cfg_attr(debug_assertions, ignore = "slow in debug builds")]
fn proposal_helps_a_pointer_intensive_pair() {
    let t0 = train_trace("health");
    let t1 = train_trace("mst");
    let a0 = artifacts(&t0);
    let a1 = artifacts(&t1);
    let alone = [
        run_system(SystemKind::StreamOnly, &t0, &a0)
            .expect("run")
            .ipc(),
        run_system(SystemKind::StreamOnly, &t1, &a1)
            .expect("run")
            .ipc(),
    ];

    let run_pair = |kind: SystemKind| {
        let mut mm = MultiMachine::new(
            MachineConfig::default(),
            vec![core_setup(kind, &a0), core_setup(kind, &a1)],
        );
        mm.run(&[clone_trace(&t0), clone_trace(&t1)]).expect("run")
    };
    let base = run_pair(SystemKind::StreamOnly);
    let ours = run_pair(SystemKind::StreamEcdpThrottled);
    let ws_base = base.weighted_speedup(&alone);
    let ws_ours = ours.weighted_speedup(&alone);
    assert!(
        ws_ours > ws_base,
        "proposal must help a pointer-intensive mix: {ws_ours:.3} vs {ws_base:.3}"
    );
}

#[test]
#[cfg_attr(debug_assertions, ignore = "slow in debug builds")]
fn four_cores_complete_and_account_bus_traffic() {
    let names = ["mst", "libquantum", "omnetpp", "sjeng"];
    let traces: Vec<Trace> = names.iter().map(|n| train_trace(n)).collect();
    let arts: Vec<CompilerArtifacts> = traces.iter().map(artifacts).collect();
    let mut mm = MultiMachine::new(
        MachineConfig::default(),
        arts.iter()
            .map(|a| core_setup(SystemKind::StreamEcdpThrottled, a))
            .collect(),
    );
    let r = mm
        .run(&traces.iter().map(clone_trace).collect::<Vec<_>>())
        .expect("run");
    assert_eq!(r.per_core.len(), 4);
    let per_core_sum: u64 = r.per_core.iter().map(|s| s.bus_transfers).sum();
    assert!(
        r.total_bus_transfers >= per_core_sum,
        "total bus traffic includes post-snapshot restarts"
    );
    for (i, s) in r.per_core.iter().enumerate() {
        assert!(s.retired_instructions > 0, "core {i} retired nothing");
        assert!(s.cycles > 0);
    }
}
