//! Paper-conformance integration tests: the metamorphic property suite
//! on the smoke grid, fault-injected failure paths, the
//! `VALIDATE_report.json` schema, and the end-to-end exit-code contract
//! of `run_all --validate`.
//!
//! Compiled as a `bench` test target (see `crates/bench/Cargo.toml`).
//! Run with the runtime invariants armed in every simulation:
//!
//! ```sh
//! cargo test -p bench --features validate --test conformance
//! ```

#![allow(clippy::unwrap_used)]

use std::process::Command;

use bench::validate::PROPERTIES;
use bench::{run_conformance, FaultAction, FaultPlan, Lab, ValidateReport};
use sim_core::Json;
use workloads::InputSet;

const SMOKE: [&str; 3] = ["mst", "health", "libquantum"];

fn smoke_names() -> Vec<String> {
    SMOKE.iter().map(ToString::to_string).collect()
}

/// All five paper properties hold on every smoke workload, and the
/// report round-trips through its JSON schema.
#[test]
fn conformance_properties_hold_on_the_smoke_grid() {
    let lab = Lab::new();
    let report = run_conformance(&lab, &smoke_names(), InputSet::Test);
    assert_eq!(
        report.results.len(),
        PROPERTIES.len() * SMOKE.len(),
        "one result per property per workload"
    );
    for r in &report.results {
        assert!(r.passed, "{}/{}: {}", r.workload, r.property, r.detail);
        assert!(!r.detail.is_empty(), "passing results carry evidence");
    }
    assert!(report.passed());

    let text = report.to_json().to_string_pretty();
    let back = ValidateReport::from_json(&Json::parse(&text).unwrap()).unwrap();
    assert_eq!(back, report);
}

/// An injected panic in one grid cell fails the properties that run that
/// cell — and only the affected workload; the others stay green.
#[test]
fn injected_fault_fails_the_properties_that_run_it() {
    let mut faults = FaultPlan::none();
    faults.push(FaultAction::Panic, "mst", "test", "stream+cdp");
    let lab = Lab::with_faults(faults);
    let report = run_conformance(&lab, &smoke_names(), InputSet::Test);
    assert!(!report.passed());

    // The faulted cell (unthrottled stream+cdp via the lab cache) is
    // exercised only by the pruning comparison.
    let r = report
        .results
        .iter()
        .find(|r| r.workload == "mst" && r.property == "ecdp-prunes-cdp")
        .unwrap();
    assert!(!r.passed, "ecdp-prunes-cdp must fail on the faulted cell");
    assert!(
        r.detail.contains("panicked") && r.detail.contains("injected fault"),
        "detail must carry the panic payload: {}",
        r.detail
    );
    // Properties not touching the faulted cell, and other workloads,
    // are unaffected.
    for r in &report.results {
        let hit = r.workload == "mst" && r.property == "ecdp-prunes-cdp";
        assert_eq!(
            r.passed, !hit,
            "{}/{}: {}",
            r.workload, r.property, r.detail
        );
    }
}

/// With the `validate` feature on, a deliberately broken threshold table
/// injected through [`ecdp::SystemBuilder::validate`] must surface as an
/// invariant-violation error, while the paper configuration sails
/// through — the runtime re-derivation actually bites.
#[cfg(feature = "validate")]
#[test]
fn runtime_validator_rejects_injected_broken_thresholds() {
    use ecdp::{SystemBuilder, SystemKind};
    use sim_core::{MachineConfig, ThrottleThresholds, ValidateConfig};

    let lab = Lab::new();
    let art = lab.artifacts("mst");
    let trace = lab.trace("mst", InputSet::Test);
    // Short intervals so the run crosses many feedback boundaries.
    let mut cfg = MachineConfig::default();
    cfg.l2.bytes = 64 * 1024;
    cfg.interval_evictions = 128;

    let run = |validate: ValidateConfig| {
        SystemBuilder::new(SystemKind::StreamEcdpThrottled)
            .artifacts(&art)
            .config(cfg.clone())
            .validate(validate)
            .run(&trace)
    };

    run(ValidateConfig::paper()).expect("paper thresholds must validate cleanly");

    let broken = ValidateConfig {
        // Unreachable thresholds: every transition re-derives as Table 3
        // case 2, so any logged case 1/3/4/5 decision is a mismatch.
        thresholds: ThrottleThresholds {
            coverage: 1.1,
            accuracy_low: 1.1,
            accuracy_high: 1.1,
        },
        ..ValidateConfig::paper()
    };
    let err = run(broken).expect_err("broken thresholds must be rejected");
    assert_eq!(err.kind(), "invariant", "{err}");
    assert!(err.to_string().contains("re-derivation mismatch"), "{err}");
}

/// With the `validate` feature on, every simulation in the suite runs
/// with the paper invariants armed by default — the whole smoke sweep
/// must come back clean without anyone calling `set_validate`.
#[cfg(feature = "validate")]
#[test]
fn feature_default_invariants_hold_across_the_smoke_sweep() {
    use ecdp::SystemKind;
    let lab = Lab::new();
    for wl in SMOKE {
        for kind in [
            SystemKind::NoPrefetch,
            SystemKind::StreamOnly,
            SystemKind::StreamCdp,
            SystemKind::StreamEcdpThrottled,
        ] {
            lab.try_run_on(wl, InputSet::Test, kind)
                .unwrap_or_else(|e| panic!("{wl}/{}: {e}", kind.label()));
        }
    }
}

/// Drives the real binary: `run_all --validate` on the smoke grid writes
/// a passing report and exits 0; a fault-injected run and a
/// broken-thresholds run each exit 2 with the violation recorded in the
/// report.
#[test]
fn run_all_validate_gate_end_to_end() {
    let dir = std::env::temp_dir().join(format!("bench-validate-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let report_path = dir.join("VALIDATE_report.json");

    let run = |envs: &[(&str, &str)]| {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_run_all"));
        cmd.arg("--validate")
            .arg(&report_path)
            .env("BENCH_LAB_DIR", &dir)
            .env("BENCH_SWEEP_WORKLOADS", "mst")
            .env("BENCH_SWEEP_INPUT", "test")
            .env_remove("BENCH_FAULT_PLAN")
            .env_remove("BENCH_VALIDATE_THRESHOLDS");
        for (k, v) in envs {
            cmd.env(k, v);
        }
        cmd.output().expect("run_all spawns")
    };
    let load_report = || {
        let text = std::fs::read_to_string(&report_path).expect("report written");
        ValidateReport::from_json(&Json::parse(&text).unwrap()).expect("report parses")
    };

    // Clean pass: exit 0, all properties recorded as held.
    let out = run(&[]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(0), "clean run must pass\n{stderr}");
    let report = load_report();
    assert!(report.passed());
    assert_eq!(report.results.len(), PROPERTIES.len());

    // Broken thresholds injected through the documented hook: the
    // Table 3 re-derivation must mismatch and the gate must exit 2.
    let out = run(&[("BENCH_VALIDATE_THRESHOLDS", "1.1,1.1,1.1")]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(2),
        "threshold violation must exit 2\n{stderr}"
    );
    let report = load_report();
    assert!(!report.passed());
    let failed = report.failures();
    assert_eq!(failed.len(), 1, "{failed:?}");
    assert_eq!(failed[0].property, "table3-rederivation");

    // An injected cell fault also trips the gate with exit 2.
    let out = run(&[("BENCH_FAULT_PLAN", "panic@mst:test:stream+cdp")]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(2),
        "injected fault must exit 2\n{stderr}"
    );
    assert!(!load_report().passed());

    let _ = std::fs::remove_dir_all(&dir);
}
