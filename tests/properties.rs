//! Property-based tests (proptest) for the core data structures and
//! invariants of the simulator substrate.

#![allow(clippy::unwrap_used)]

use proptest::prelude::*;

use ecdp::hints::HintVector;
use sim_core::cache::{Cache, CacheConfig, LineState};
use sim_core::dram::{Dram, DramRequest};
use sim_core::{
    Aggressiveness, DramConfig, IntervalFeedback, Machine, MachineConfig, ThrottleDecision,
    ThrottlePolicy, TraceBuilder,
};
use sim_mem::{layout, Heap, SimMemory};
use throttle::CoordinatedThrottle;

// ---------------------------------------------------------------- sim-mem

proptest! {
    #[test]
    fn heap_allocations_never_overlap(sizes in proptest::collection::vec(1u32..256, 1..64)) {
        let mut heap = Heap::new(layout::HEAP_BASE, layout::HEAP_LIMIT);
        let mut spans: Vec<(u32, u32)> = Vec::new();
        for size in sizes {
            let addr = heap.alloc(size).unwrap();
            let rounded = size.div_ceil(8) * 8;
            prop_assert!(addr >= layout::HEAP_BASE);
            prop_assert!(addr + rounded <= layout::HEAP_LIMIT);
            prop_assert_eq!(addr % 8, 0);
            for &(a, s) in &spans {
                prop_assert!(addr + rounded <= a || a + s <= addr, "overlap");
            }
            spans.push((addr, rounded));
        }
    }

    #[test]
    fn memory_matches_hashmap_model(
        writes in proptest::collection::vec((0u32..0x2_0000, any::<u32>()), 1..200)
    ) {
        let mut mem = SimMemory::new();
        let mut model = std::collections::HashMap::new();
        for (addr, value) in &writes {
            let addr = addr * 4; // word aligned
            mem.write_u32(addr, *value);
            model.insert(addr, *value);
        }
        for (addr, value) in &model {
            prop_assert_eq!(mem.read_u32(*addr), *value);
        }
    }

    #[test]
    fn block_words_reflect_word_writes(
        base_block in 0u32..1000,
        words in proptest::collection::vec(any::<u32>(), 16)
    ) {
        let mut mem = SimMemory::new();
        let base = base_block * 64;
        for (i, w) in words.iter().enumerate() {
            mem.write_u32(base + (i as u32) * 4, *w);
        }
        let got = mem.read_block_words(base + 17); // any byte in the block
        prop_assert_eq!(got.to_vec(), words);
    }
}

// ---------------------------------------------------------------- cache

/// A slow but obviously correct set-associative LRU model.
struct ModelCache {
    sets: usize,
    ways: usize,
    lines: Vec<Vec<u32>>, // per set, MRU first
}

impl ModelCache {
    fn new(sets: usize, ways: usize) -> Self {
        ModelCache {
            sets,
            ways,
            lines: vec![Vec::new(); sets],
        }
    }

    fn set_of(&self, block: u32) -> usize {
        (block as usize) % self.sets
    }

    fn access(&mut self, block: u32) -> bool {
        let s = self.set_of(block);
        if let Some(pos) = self.lines[s].iter().position(|&b| b == block) {
            let b = self.lines[s].remove(pos);
            self.lines[s].insert(0, b);
            true
        } else {
            false
        }
    }

    fn fill(&mut self, block: u32) {
        let s = self.set_of(block);
        if let Some(pos) = self.lines[s].iter().position(|&b| b == block) {
            self.lines[s].remove(pos);
        }
        self.lines[s].insert(0, block);
        self.lines[s].truncate(self.ways);
    }
}

proptest! {
    #[test]
    fn cache_agrees_with_lru_model(blocks in proptest::collection::vec(0u32..64, 1..400)) {
        // 4 sets x 2 ways of 64-byte lines.
        let mut cache = Cache::new(CacheConfig { bytes: 512, ways: 2, hit_latency: 1 });
        let mut model = ModelCache::new(4, 2);
        for b in blocks {
            let addr = b * 64;
            let hit = cache.access(addr).is_some();
            let model_hit = model.access(b);
            prop_assert_eq!(hit, model_hit, "divergence at block {}", b);
            if !hit {
                cache.fill(addr, LineState::default());
                model.fill(b);
            }
        }
    }
}

// ---------------------------------------------------------------- hints

proptest! {
    #[test]
    fn hint_vector_roundtrip(offsets in proptest::collection::vec(-16i32..16, 0..12)) {
        let mut v = HintVector::default();
        let set: std::collections::HashSet<i32> =
            offsets.iter().map(|o| o * 4).collect();
        for &o in &set {
            v.set(o);
        }
        for slot in -16i32..16 {
            let off = slot * 4;
            prop_assert_eq!(v.allows(off), set.contains(&off), "offset {}", off);
        }
        prop_assert_eq!(v.count() as usize, set.len());
    }
}

// ---------------------------------------------------------------- throttle

/// An independent restatement of the paper's Table 3.
fn table3(own_cov: f64, own_acc: f64, rival_cov: f64) -> ThrottleDecision {
    let cov_high = own_cov >= 0.2;
    let rival_high = rival_cov >= 0.2;
    let acc = if own_acc >= 0.7 {
        2
    } else if own_acc >= 0.4 {
        1
    } else {
        0
    };
    match (cov_high, acc, rival_high) {
        (true, _, _) => ThrottleDecision::Up,       // case 1
        (false, 0, _) => ThrottleDecision::Down,    // case 2
        (false, _, false) => ThrottleDecision::Up,  // case 3
        (false, 1, true) => ThrottleDecision::Down, // case 4
        (false, 2, true) => ThrottleDecision::Keep, // case 5
        _ => unreachable!(),
    }
}

proptest! {
    #[test]
    fn coordinated_throttle_implements_table3(
        cov_a in 0.0f64..1.0, acc_a in 0.0f64..1.0,
        cov_b in 0.0f64..1.0, acc_b in 0.0f64..1.0,
    ) {
        let fb = |cov, acc| IntervalFeedback {
            accuracy: acc,
            coverage: cov,
            lateness: 0.0,
            pollution: 0.0,
            level: Aggressiveness::Moderate,
        };
        let mut p = CoordinatedThrottle::default();
        let d = p.adjust(&[fb(cov_a, acc_a), fb(cov_b, acc_b)]);
        prop_assert_eq!(d[0], table3(cov_a, acc_a, cov_b));
        prop_assert_eq!(d[1], table3(cov_b, acc_b, cov_a));
    }
}

// ---------------------------------------------------------------- dram

proptest! {
    #[test]
    fn every_dram_read_completes_after_min_latency(
        blocks in proptest::collection::vec(0u32..4096, 1..32)
    ) {
        let cfg = DramConfig::default();
        let min_access = cfg.controller_overhead + cfg.row_hit_cycles + cfg.bus_transfer_cycles;
        let mut dram = Dram::new(cfg, 1);
        let n = blocks.len();
        let mut accepted = 0usize;
        for (i, b) in blocks.iter().enumerate() {
            let ok = dram.try_enqueue(DramRequest {
                block_addr: b * 64,
                is_write: false,
                is_demand: true,
                core: 0,
                mshr_slot: i as u32,
                enqueue_cycle: 0,
            });
            if ok {
                accepted += 1;
            }
        }
        let mut done = 0usize;
        let mut now = 0u64;
        while done < accepted && now < 1_000_000 {
            now += 1;
            for c in dram.tick(now) {
                prop_assert!(c.finish_cycle >= min_access);
                done += 1;
            }
        }
        prop_assert_eq!(done, accepted, "all accepted reads must complete");
        prop_assert_eq!(dram.bus_transfers(), accepted as u64);
        let _ = n;
    }
}

// ---------------------------------------------------------------- engine

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn machine_retires_arbitrary_traces(
        ops in proptest::collection::vec((0u32..2000u32, 0u8..10u8, 1u32..20), 1..120)
    ) {
        // Random mixes of loads, stores and compute bursts, with random
        // (valid, backwards) address dependences.
        let mut tb = TraceBuilder::new(SimMemory::new());
        let mut load_ids = Vec::new();
        for (addr_word, kind, count) in ops {
            let addr = layout::HEAP_BASE + addr_word * 4;
            match kind {
                0..=4 => {
                    let dep = if kind % 2 == 0 { load_ids.last().copied() } else { None };
                    let (_, id) = tb.load(0x10 + u32::from(kind), addr, dep);
                    load_ids.push(id);
                }
                5..=6 => tb.store(0x20, addr, count, None),
                _ => tb.compute(count),
            }
        }
        let trace = tb.finish();
        let expected = trace.instructions;
        let mut machine = Machine::new(MachineConfig::default());
        let stats = machine.run(&trace).expect("run");
        prop_assert_eq!(stats.retired_instructions, expected);
        prop_assert!(stats.cycles > 0);
    }
}

// ------------------------------------------------- event skip-ahead engine
//
// The event-skipping clock must be an invisible optimisation: running the
// same trace on the cycle-by-cycle reference stepper has to reproduce the
// statistics (and the interval time series) byte for byte, across
// randomized machine shapes, workloads and system assemblies.

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn skip_ahead_matches_reference_stepper_on_random_traces(
        ops in proptest::collection::vec((0u32..2000u32, 0u8..10u8, 1u32..20), 1..120),
        window_size in 8u32..64,
        lsq_size in 4u32..32,
        l2_mshrs in 2u32..16,
    ) {
        let mut tb = TraceBuilder::new(SimMemory::new());
        let mut load_ids = Vec::new();
        for (addr_word, kind, count) in ops {
            let addr = layout::HEAP_BASE + addr_word * 4;
            match kind {
                0..=4 => {
                    let dep = if kind % 2 == 0 { load_ids.last().copied() } else { None };
                    let (_, id) = tb.load(0x10 + u32::from(kind), addr, dep);
                    load_ids.push(id);
                }
                5..=6 => tb.store(0x20, addr, count, None),
                _ => tb.compute(count),
            }
        }
        let trace = tb.finish();
        let mut cfg = MachineConfig::default();
        cfg.core.window_size = window_size;
        cfg.core.lsq_size = lsq_size;
        cfg.l2_mshrs = l2_mshrs;
        let skipping = Machine::new(cfg.clone()).run(&trace).expect("run");
        let mut reference = Machine::new(cfg);
        reference.set_reference_stepping(true);
        let reference = reference.run(&trace).expect("run");
        prop_assert_eq!(skipping, reference);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]
    #[test]
    fn skip_ahead_matches_reference_on_assembled_systems(
        workload_idx in 0usize..3,
        system_idx in 0usize..3,
        interval_evictions in 64u64..512,
    ) {
        use ecdp::system::{CompilerArtifacts, SystemBuilder, SystemKind};
        use sim_core::ObsConfig;

        let workload = ["mst", "health", "libquantum"][workload_idx];
        let system = [
            SystemKind::StreamOnly,
            SystemKind::StreamCdp,
            SystemKind::StreamEcdpThrottled,
        ][system_idx];
        let trace = workloads::registry::lookup(workload)
            .expect("workload")
            .generate(workloads::InputSet::Test);
        let artifacts = CompilerArtifacts::empty();
        // Shrink the interval so the short test input crosses several
        // sampling boundaries — boundaries are skip targets, so this
        // exercises the interval-as-event path.
        let cfg = MachineConfig { interval_evictions, ..MachineConfig::default() };
        let obs = ObsConfig { timeseries: true, decisions: true, ..ObsConfig::default() };
        let run = |no_skip: bool| {
            SystemBuilder::new(system)
                .artifacts(&artifacts)
                .config(cfg.clone())
                .observe(obs)
                .reference_stepping(no_skip)
                .run(&trace)
                .expect("run")
        };
        let skipping = run(false);
        let reference = run(true);
        prop_assert_eq!(&skipping.stats, &reference.stats);
        let skip_ts = skipping.trace.expect("trace").timeseries_json().to_string_pretty();
        let ref_ts = reference.trace.expect("trace").timeseries_json().to_string_pretty();
        prop_assert_eq!(skip_ts, ref_ts, "timeseries.json must be byte-identical");
    }
}

// ------------------------------------------------- warm-state checkpoint/fork
//
// Forking a system from a warm snapshot — directly, or after a round
// trip through the wire format — must be invisible: the forked run's
// statistics and interval time series have to match the cold run byte
// for byte, across randomized workloads, systems, interval lengths and
// capture points. Mirrors the skip-vs-no-skip suite above; the
// `validate` feature arms the runtime invariants for all of them.

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]
    #[test]
    fn warm_fork_matches_cold_run_on_assembled_systems(
        workload_idx in 0usize..3,
        system_idx in 0usize..3,
        interval_evictions in 64u64..512,
        checkpoint_tenths in 1u64..9,
    ) {
        use ecdp::system::{CompilerArtifacts, SystemBuilder, SystemKind};
        use sim_core::{ObsConfig, Snapshot};

        let workload = ["mst", "health", "libquantum"][workload_idx];
        let system = [
            SystemKind::StreamOnly,
            SystemKind::StreamCdp,
            SystemKind::StreamEcdpThrottled,
        ][system_idx];
        let trace = workloads::registry::lookup(workload)
            .expect("workload")
            .generate(workloads::InputSet::Test);
        let artifacts = CompilerArtifacts::empty();
        let cfg = MachineConfig { interval_evictions, ..MachineConfig::default() };
        let obs = ObsConfig { timeseries: true, decisions: true, ..ObsConfig::default() };
        let build = || {
            SystemBuilder::new(system)
                .artifacts(&artifacts)
                .config(cfg.clone())
                .observe(obs)
        };

        let cold = build().run(&trace).expect("cold run");
        // Capture somewhere strictly inside the run (10%..80%).
        let at = (cold.stats.cycles * checkpoint_tenths / 10).max(1);
        let captured = build().warm_checkpoint(at).run(&trace).expect("capture run");
        prop_assert_eq!(&captured.stats, &cold.stats, "capture must be a pure read");
        let snapshot = captured.snapshot.expect("run passed the capture point");

        let forked = build().fork_from(&snapshot).run(&trace).expect("forked run");
        let restored = Snapshot::from_bytes(&snapshot.to_bytes()).expect("wire round-trip");
        let rewired = build().fork_from(&restored).run(&trace).expect("restored run");

        let cold_ts = cold.trace.expect("trace").timeseries_json().to_string_pretty();
        for (tag, run) in [("forked", forked), ("wire-restored", rewired)] {
            prop_assert_eq!(&run.stats, &cold.stats, "{} stats diverged", tag);
            let ts = run.trace.expect("trace").timeseries_json().to_string_pretty();
            prop_assert_eq!(&ts, &cold_ts, "{} timeseries must be byte-identical", tag);
        }
    }
}
