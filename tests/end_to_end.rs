//! End-to-end integration tests: the full profile → hint → run pipeline on
//! real workload stand-ins, asserting the paper's qualitative results.
//!
//! Debug builds run every test on `InputSet::Test` — train-sized data
//! structures with far fewer traced iterations — so the whole file
//! finishes in seconds under `cargo test -q`. Release builds use the
//! paper's train/ref methodology. The assertions are identical in both
//! modes: the qualitative effects come from the pointer-chasing *regime*
//! (cold-miss-dominated structures larger than the L1), which the test
//! input preserves, and §6.1.6 shows the profile is insensitive to the
//! input it was gathered on, so profiling on the test input in debug
//! builds does not change hint classification.

#![allow(clippy::unwrap_used)]

use ecdp::profile::profile_workload;
use ecdp::system::{CompilerArtifacts, SystemBuilder, SystemKind};
/// Thin shim over [`SystemBuilder`] keeping the older call shape used
/// throughout these tests.
fn run_system(
    kind: SystemKind,
    trace: &sim_core::Trace,
    artifacts: &CompilerArtifacts,
) -> Result<sim_core::RunStats, sim_core::SimError> {
    SystemBuilder::new(kind)
        .artifacts(artifacts)
        .run(trace)
        .map(|run| run.stats)
}
use workloads::{registry, InputSet};

/// The profiling input: paper methodology (`Train`) in release builds,
/// the smoke-test input in debug builds.
fn profile_input() -> InputSet {
    if cfg!(debug_assertions) {
        InputSet::Test
    } else {
        InputSet::Train
    }
}

/// The measured input for experiments the paper evaluates on `Ref`.
fn ref_input() -> InputSet {
    if cfg!(debug_assertions) {
        InputSet::Test
    } else {
        InputSet::Ref
    }
}

fn artifacts_for(name: &str) -> (CompilerArtifacts, sim_core::Trace) {
    let wl = registry::lookup(name).unwrap();
    let train = wl.generate(profile_input());
    let profile = profile_workload(&train);
    (CompilerArtifacts::from_profile(&profile), train)
}

/// Artifacts from the profiling input, evaluated on the ref input (the
/// paper's methodology; needed where the qualitative shape only emerges
/// at ref working-set sizes).
fn artifacts_for_ref(name: &str) -> (CompilerArtifacts, sim_core::Trace) {
    let wl = registry::lookup(name).unwrap();
    let profile = profile_workload(&wl.generate(profile_input()));
    (
        CompilerArtifacts::from_profile(&profile),
        wl.generate(ref_input()),
    )
}

#[test]
fn cdp_degrades_mst_and_ecdp_repairs_it() {
    // The paper's central Figure 5 / §3 example: unfiltered CDP wrecks mst,
    // the compiler hints restore it.
    let (art, reference) = artifacts_for_ref("mst");
    let base = run_system(SystemKind::StreamOnly, &reference, &art).expect("run");
    let cdp = run_system(SystemKind::StreamCdp, &reference, &art).expect("run");
    let ecdp = run_system(SystemKind::StreamEcdp, &reference, &art).expect("run");

    assert!(
        cdp.ipc() < 0.8 * base.ipc(),
        "CDP must hurt mst: {} vs {}",
        cdp.ipc(),
        base.ipc()
    );
    assert!(
        cdp.bpki() > 1.5 * base.bpki(),
        "CDP must waste bandwidth on mst"
    );
    assert!(
        ecdp.ipc() > 0.95 * base.ipc(),
        "ECDP must repair the loss: {} vs {}",
        ecdp.ipc(),
        base.ipc()
    );
    assert!(
        ecdp.prefetchers[1].accuracy() > cdp.prefetchers[1].accuracy(),
        "hints must raise CDP accuracy"
    );
}

#[test]
fn cdp_speeds_up_health_dramatically() {
    // The paper's best case: long list chases with multi-node blocks.
    let (art, train) = artifacts_for("health");
    let base = run_system(SystemKind::StreamOnly, &train, &art).expect("run");
    let ours = run_system(SystemKind::StreamEcdpThrottled, &train, &art).expect("run");
    assert!(
        ours.ipc() > 1.4 * base.ipc(),
        "health must gain a lot: {:.3} vs {:.3}",
        ours.ipc(),
        base.ipc()
    );
}

#[test]
fn proposal_never_loses_badly_where_cdp_does() {
    // On the CDP-hostile benchmarks the full proposal must stay close to
    // the baseline even when it cannot win.
    for name in ["mst", "xalancbmk", "bisort"] {
        let (art, reference) = artifacts_for_ref(name);
        let base = run_system(SystemKind::StreamOnly, &reference, &art).expect("run");
        let cdp = run_system(SystemKind::StreamCdp, &reference, &art).expect("run");
        let ours = run_system(SystemKind::StreamEcdpThrottled, &reference, &art).expect("run");
        assert!(cdp.ipc() < base.ipc(), "{name}: CDP should hurt");
        assert!(
            ours.ipc() > 0.9 * base.ipc(),
            "{name}: proposal must not lose: {:.3} vs {:.3}",
            ours.ipc(),
            base.ipc()
        );
    }
}

#[test]
fn oracle_bounds_every_real_prefetcher() {
    let (art, train) = artifacts_for("omnetpp");
    let oracle = run_system(SystemKind::OracleLds, &train, &art).expect("run");
    for kind in [
        SystemKind::StreamOnly,
        SystemKind::StreamCdp,
        SystemKind::StreamEcdpThrottled,
        SystemKind::GhbAlone,
    ] {
        let s = run_system(kind, &train, &art).expect("run");
        assert!(
            s.ipc() <= oracle.ipc() * 1.02,
            "{:?} beats the oracle?!",
            kind
        );
    }
}

#[test]
fn streaming_workloads_are_unaffected_by_the_proposal() {
    // §6.7: no LDS misses => nothing for ECDP to do.
    let (art, train) = artifacts_for("libquantum");
    let base = run_system(SystemKind::StreamOnly, &train, &art).expect("run");
    let ours = run_system(SystemKind::StreamEcdpThrottled, &train, &art).expect("run");
    let ratio = ours.ipc() / base.ipc();
    assert!(
        (0.97..=1.03).contains(&ratio),
        "streaming workload perturbed: {ratio}"
    );
}

#[test]
fn runs_are_deterministic() {
    let (art, train) = artifacts_for("perlbench");
    let a = run_system(SystemKind::StreamEcdpThrottled, &train, &art).expect("run");
    let b = run_system(SystemKind::StreamEcdpThrottled, &train, &art).expect("run");
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.bus_transfers, b.bus_transfers);
    assert_eq!(a.prefetchers[1].issued, b.prefetchers[1].issued);
}

#[test]
fn profiling_attributes_figure5_pointer_groups() {
    // In mst's node layout {key, d1, d2, next}, the next-offset PGs must
    // profile as beneficial and the data-offset ones as harmful. This
    // test uses the real train input in every build mode: the paper (§3)
    // profiles on a train-sized run precisely because PG usefulness only
    // resolves cleanly there — the ref-regime smoke input classifies
    // mst's next chains as useless (the Figure 5 degradation itself).
    let wl = registry::lookup("mst").unwrap();
    let train = wl.generate(InputSet::Train);
    let profile = profile_workload(&train);
    let (beneficial, harmful) = profile.counts();
    assert!(beneficial > 0, "mst has a useful next chain");
    assert!(
        harmful > 5,
        "mst has a substantial harmful population ({beneficial} beneficial, {harmful} harmful)"
    );
    let hints = profile.hint_table();
    assert!(!hints.is_empty(), "hints must be emitted");
}

#[test]
fn hardware_filter_is_coarser_than_ecdp() {
    // §6.4: the 8 KB Zhuang-Lee filter helps CDP but less than the
    // compiler hints on the Figure 5 benchmark.
    let (art, train) = artifacts_for("mst");
    let cdp = run_system(SystemKind::StreamCdp, &train, &art).expect("run");
    let hw = run_system(SystemKind::StreamCdpHwFilter, &train, &art).expect("run");
    let ours = run_system(SystemKind::StreamEcdpThrottled, &train, &art).expect("run");
    assert!(
        hw.ipc() >= cdp.ipc() * 0.98,
        "the filter should not be worse than raw CDP"
    );
    assert!(
        ours.ipc() >= hw.ipc(),
        "ECDP+throttling should beat the hardware filter"
    );
}
