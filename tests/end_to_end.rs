//! End-to-end integration tests: the full profile → hint → run pipeline on
//! real workload stand-ins, asserting the paper's qualitative results.
//!
//! The heavy cases are ignored in debug builds; run with
//! `cargo test --release` to exercise everything.

use ecdp::profile::profile_workload;
use ecdp::system::{run_system, CompilerArtifacts, SystemKind};
use workloads::{by_name, InputSet};

fn artifacts_for(name: &str) -> (CompilerArtifacts, sim_core::Trace) {
    let wl = by_name(name).unwrap();
    let train = wl.generate(InputSet::Train);
    let profile = profile_workload(&train);
    (CompilerArtifacts::from_profile(&profile), train)
}

/// Artifacts from the train input, evaluated on the ref input (the paper's
/// methodology; needed where the qualitative shape only emerges at ref
/// working-set sizes).
fn artifacts_for_ref(name: &str) -> (CompilerArtifacts, sim_core::Trace) {
    let wl = by_name(name).unwrap();
    let profile = profile_workload(&wl.generate(InputSet::Train));
    (
        CompilerArtifacts::from_profile(&profile),
        wl.generate(InputSet::Ref),
    )
}

#[test]
#[cfg_attr(debug_assertions, ignore = "slow in debug builds")]
fn cdp_degrades_mst_and_ecdp_repairs_it() {
    // The paper's central Figure 5 / §3 example: unfiltered CDP wrecks mst,
    // the compiler hints restore it.
    let (art, reference) = artifacts_for_ref("mst");
    let base = run_system(SystemKind::StreamOnly, &reference, &art);
    let cdp = run_system(SystemKind::StreamCdp, &reference, &art);
    let ecdp = run_system(SystemKind::StreamEcdp, &reference, &art);

    assert!(
        cdp.ipc() < 0.8 * base.ipc(),
        "CDP must hurt mst: {} vs {}",
        cdp.ipc(),
        base.ipc()
    );
    assert!(
        cdp.bpki() > 1.5 * base.bpki(),
        "CDP must waste bandwidth on mst"
    );
    assert!(
        ecdp.ipc() > 0.95 * base.ipc(),
        "ECDP must repair the loss: {} vs {}",
        ecdp.ipc(),
        base.ipc()
    );
    assert!(
        ecdp.prefetchers[1].accuracy() > cdp.prefetchers[1].accuracy(),
        "hints must raise CDP accuracy"
    );
}

#[test]
#[cfg_attr(debug_assertions, ignore = "slow in debug builds")]
fn cdp_speeds_up_health_dramatically() {
    // The paper's best case: long list chases with multi-node blocks.
    let (art, train) = artifacts_for("health");
    let base = run_system(SystemKind::StreamOnly, &train, &art);
    let ours = run_system(SystemKind::StreamEcdpThrottled, &train, &art);
    assert!(
        ours.ipc() > 1.4 * base.ipc(),
        "health must gain a lot: {:.3} vs {:.3}",
        ours.ipc(),
        base.ipc()
    );
}

#[test]
#[cfg_attr(debug_assertions, ignore = "slow in debug builds")]
fn proposal_never_loses_badly_where_cdp_does() {
    // On the CDP-hostile benchmarks the full proposal must stay close to
    // the baseline even when it cannot win.
    for name in ["mst", "xalancbmk", "bisort"] {
        let (art, reference) = artifacts_for_ref(name);
        let base = run_system(SystemKind::StreamOnly, &reference, &art);
        let cdp = run_system(SystemKind::StreamCdp, &reference, &art);
        let ours = run_system(SystemKind::StreamEcdpThrottled, &reference, &art);
        assert!(cdp.ipc() < base.ipc(), "{name}: CDP should hurt");
        assert!(
            ours.ipc() > 0.9 * base.ipc(),
            "{name}: proposal must not lose: {:.3} vs {:.3}",
            ours.ipc(),
            base.ipc()
        );
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "slow in debug builds")]
fn oracle_bounds_every_real_prefetcher() {
    let (art, train) = artifacts_for("omnetpp");
    let oracle = run_system(SystemKind::OracleLds, &train, &art);
    for kind in [
        SystemKind::StreamOnly,
        SystemKind::StreamCdp,
        SystemKind::StreamEcdpThrottled,
        SystemKind::GhbAlone,
    ] {
        let s = run_system(kind, &train, &art);
        assert!(
            s.ipc() <= oracle.ipc() * 1.02,
            "{:?} beats the oracle?!",
            kind
        );
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "slow in debug builds")]
fn streaming_workloads_are_unaffected_by_the_proposal() {
    // §6.7: no LDS misses => nothing for ECDP to do.
    let (art, train) = artifacts_for("libquantum");
    let base = run_system(SystemKind::StreamOnly, &train, &art);
    let ours = run_system(SystemKind::StreamEcdpThrottled, &train, &art);
    let ratio = ours.ipc() / base.ipc();
    assert!(
        (0.97..=1.03).contains(&ratio),
        "streaming workload perturbed: {ratio}"
    );
}

#[test]
#[cfg_attr(debug_assertions, ignore = "slow in debug builds")]
fn runs_are_deterministic() {
    let (art, train) = artifacts_for("perlbench");
    let a = run_system(SystemKind::StreamEcdpThrottled, &train, &art);
    let b = run_system(SystemKind::StreamEcdpThrottled, &train, &art);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.bus_transfers, b.bus_transfers);
    assert_eq!(a.prefetchers[1].issued, b.prefetchers[1].issued);
}

#[test]
#[cfg_attr(debug_assertions, ignore = "slow in debug builds")]
fn profiling_attributes_figure5_pointer_groups() {
    // In mst's node layout {key, d1, d2, next}, the next-offset PGs must
    // profile as beneficial and the data-offset ones as harmful.
    let wl = by_name("mst").unwrap();
    let train = wl.generate(InputSet::Train);
    let profile = profile_workload(&train);
    let (beneficial, harmful) = profile.counts();
    assert!(beneficial > 0, "mst has a useful next chain");
    assert!(
        harmful > 5,
        "mst has a substantial harmful population ({beneficial} beneficial, {harmful} harmful)"
    );
    let hints = profile.hint_table();
    assert!(!hints.is_empty(), "hints must be emitted");
}

#[test]
#[cfg_attr(debug_assertions, ignore = "slow in debug builds")]
fn hardware_filter_is_coarser_than_ecdp() {
    // §6.4: the 8 KB Zhuang-Lee filter helps CDP but less than the
    // compiler hints on the Figure 5 benchmark.
    let (art, train) = artifacts_for("mst");
    let cdp = run_system(SystemKind::StreamCdp, &train, &art);
    let hw = run_system(SystemKind::StreamCdpHwFilter, &train, &art);
    let ours = run_system(SystemKind::StreamEcdpThrottled, &train, &art);
    assert!(
        hw.ipc() >= cdp.ipc() * 0.98,
        "the filter should not be worse than raw CDP"
    );
    assert!(
        ours.ipc() >= hw.ipc(),
        "ECDP+throttling should beat the hardware filter"
    );
}
